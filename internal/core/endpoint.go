// Package core implements the Amoeba group communication protocol: reliable,
// totally-ordered multicast built on a per-group sequencer, negative
// acknowledgements, piggybacked acknowledgement state, and a user-selectable
// resilience degree.
//
// One Endpoint is one group member's protocol state machine. Endpoints are
// event-driven: inbound packets arrive through HandlePacket, timers fire
// through the configured Clock, and applications invoke the Table 1
// primitives (Send, Leave, Reset, Info). The same code runs unchanged over
// the in-memory transport (goroutines, wall-clock timers) and under the
// calibrated discrete-event simulator (virtual time, per-layer CPU
// accounting) — the only difference is the Transport, Clock, and Meter
// supplied in Config.
//
// Protocol summary (paper §2–3): a member sends by forwarding its message to
// the group's sequencer (PB method) or multicasting it and waiting for the
// sequencer's short accept (BB method); the sequencer assigns a global
// sequence number. Receivers detect gaps in the sequence numbers and request
// retransmission from the sequencer's history buffer — there are no
// per-message positive acknowledgements; instead every packet piggybacks the
// sender's highest contiguously received sequence number, which lets the
// sequencer prune history. With resilience degree r, the sequencer first
// multicasts the message as tentative; the r lowest-numbered members buffer
// it and acknowledge; only then is the short accept multicast and the message
// deliverable, so any r crashes lose no completed send. Joins, leaves, and
// recovery from member or sequencer failure are ordered in the same stream
// as data.
package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"amoeba/internal/cost"
	"amoeba/internal/flip"
	"amoeba/internal/sim"
)

// Errors surfaced to applications.
var (
	// ErrTooLarge reports a payload above Config.MaxMessage.
	ErrTooLarge = errors.New("core: message exceeds maximum size")
	// ErrSequencerDead reports exhausted retries talking to the
	// sequencer; the application should invoke Reset (or enable
	// AutoReset).
	ErrSequencerDead = errors.New("core: sequencer not responding")
	// ErrNotMember reports an operation on an endpoint that has left,
	// been expelled, or never joined.
	ErrNotMember = errors.New("core: not a group member")
	// ErrJoinFailed reports that no sequencer answered a join request.
	ErrJoinFailed = errors.New("core: join failed: no sequencer found")
	// ErrResetFailed reports a recovery that could not gather the
	// required survivors.
	ErrResetFailed = errors.New("core: reset failed: not enough survivors")
	// ErrClosed reports an operation on a closed endpoint.
	ErrClosed = errors.New("core: endpoint closed")
)

// state is the endpoint lifecycle.
type state uint8

const (
	stJoining state = iota + 1
	stNormal
	stRecovering   // voted in a recovery epoch, frozen
	stCoordinating // running a recovery as coordinator
	stDead         // left, expelled, or closed
)

func (s state) String() string {
	switch s {
	case stJoining:
		return "joining"
	case stNormal:
		return "normal"
	case stRecovering:
		return "recovering"
	case stCoordinating:
		return "coordinating"
	case stDead:
		return "dead"
	default:
		return "unknown"
	}
}

// Stats counts protocol events on one endpoint.
type Stats struct {
	Sent           uint64 // application sends completed
	Delivered      uint64 // deliveries to the application
	NaksSent       uint64
	Retransmitted  uint64 // retransmissions served (sequencer/holder side)
	RequestRetries uint64 // sender-side request retry rounds
	Ordered        uint64 // messages assigned a seqno (sequencer side)
	DroppedFull    uint64 // requests refused because history was full
	AcksSent       uint64 // resilience acks sent
	Resets         uint64 // recoveries completed
	LostGaps       uint64 // sequence numbers lost to failures (r=0 only)

	// Batching observability (sequencer side): how well the send→order
	// path amortises per-request work.
	OrderedBatches uint64 // multi-message batch entries ordered
	BatchedMsgs    uint64 // messages that travelled inside those batches
	MaxBatchMsgs   uint64 // largest batch ordered

	// Read leases (Config.LeaseDur > 0; see lease.go).
	LeaseGrants   uint64 // member-grants issued (sequencer side)
	LeaseRenewals uint64 // grants received for self (holder side)
	LeaseFences   uint64 // failover fences armed
}

// sendOp is one queued ordering request: one or more application payloads
// with contiguous localIDs, sent (and ordered) as a unit. While an op waits
// for a window slot, further PB sends coalesce into it up to Config.MaxBatch
// payloads and Config.MaxMessage bytes.
type sendOp struct {
	localID  uint32   // first localID in the op
	payloads [][]byte // one or more application payloads, FIFO
	size     int      // total payload bytes (coalescing budget)
	method   Method
	retries  int
	dones    []func(error) // one completion per payload, same order
	active   bool          // transmitted and awaiting ordering proof
	sent     bool          // transmitted at least once (survives deactivation)
}

// count is the number of payloads in the op.
func (op *sendOp) count() uint32 { return uint32(len(op.payloads)) }

// lastLocalID is the highest localID the op covers.
func (op *sendOp) lastLocalID() uint32 { return op.localID + op.count() - 1 }

// wireBody renders the op for the wire: a raw payload for singles, an
// encoded batch body for multi-payload ops.
func (op *sendOp) wireBody() (MsgKind, []byte) {
	if len(op.payloads) == 1 {
		return KindData, op.payloads[0]
	}
	return KindBatch, encodeBatchBody(op.payloads)
}

// Endpoint is one member's group-protocol instance.
type Endpoint struct {
	cfg Config

	mu       sync.Mutex
	st       state
	self     MemberID
	view     view // membership as of the delivery point
	pending  view // membership including ordered-but-undelivered changes (sequencer)
	isSeq    bool
	stats    Stats
	closed   bool
	draining bool
	actions  []func()

	// Receiving.
	hist        *history // ordered messages: pending delivery + recovery store
	nextDeliver uint32   // next seqno to hand to the application
	maxSeen     uint32   // highest seqno known to exist
	bbCache     map[bbKey][]byte
	nakTimer    sim.Timer
	nakBackoff  time.Duration
	nakSnap     uint32 // nextDeliver when the NAK timer was armed (stall detection)

	// Sending.
	nextLocalID uint32
	sendQ       []*sendOp
	sendTimer   sim.Timer
	resending   bool // window retransmission in progress: pump suppressed
	// Last values pushed to the shared send gauges (delta-updated so
	// several endpoints can share one gauge).
	obsQueued int64
	obsActive int64
	// Sequencer self-send batching: the sequencer's own requests are not
	// ordered inline but deferred one drain-cycle, so a burst coalesces
	// into batch entries like a remote member's does.
	selfPend  []*sendOp // own active ops awaiting the deferred order flush
	selfFlush bool      // a flush action is already queued

	// Sequencer.
	globalSeq       uint32 // highest assigned seqno
	ordTick         uint64 // ordering decisions so far, for the stage-timing sampling rule
	lastRecv        map[MemberID]uint32
	dedup           map[MemberID]dedupEntry
	syncTimer       sim.Timer
	tentTimer       sim.Timer
	tentStallSeq    uint32 // oldest tentative seq at the last retry round
	tentStallRounds int    // consecutive retry rounds it has survived
	statusProbe     map[MemberID]*probe
	idleLag         map[MemberID]int    // consecutive idle sync ticks behind (idle-probe detector)
	leaveSeq        uint32              // seqno of own ordered leave (handoff pending), 0 if none
	leavers         map[MemberID]uint32 // departed members still owed retransmissions, by leave seqno
	joinAcks        map[flip.Address]joinAck
	pendingJoinAcks map[uint32]flip.Address // join acks gated on resilience acceptance

	// Read leases (cfg.LeaseDur > 0; see lease.go).
	leases       map[MemberID]time.Duration // granter-side conservative expiries
	lastHeard    map[MemberID]time.Duration // member liveness for the silence rule
	leaseTickSeq uint32                     // watermark announced on the previous tick
	leaseUntil   time.Duration              // holder-side lease validity end
	leaseInc     uint32                     // incarnation the held lease was granted in
	leaseFence   time.Duration              // failover fence end
	fenced       bool                       // fence pending: no accepts/deliveries/completions
	fencedDones  [][]func(error)            // send completions awaiting the fence
	fenceTimer   sim.Timer
	fresh        []freshMark // bounded-staleness anchors from sync ticks

	// Leaving.
	leaveDone []func(error)

	// Joining.
	joinTimer   sim.Timer
	joinRetries int
	joinDone    []func(error)

	// Recovery.
	rec          *recovery
	resetWaiters []func(error)
}

type bbKey struct {
	sender  MemberID
	localID uint32
}

type dedupEntry struct {
	localID uint32
	seq     uint32
}

type probe struct {
	tries int
	timer sim.Timer
}

// NewCreator builds the endpoint for CreateGroup: the caller becomes member 0
// and the group's first sequencer. Call Start after binding the transport.
func NewCreator(cfg Config) (*Endpoint, error) {
	ep, err := newEndpoint(cfg)
	if err != nil {
		return nil, err
	}
	ep.st = stNormal
	ep.self = 0
	ep.isSeq = true
	ep.view = view{incarnation: 1, members: []Member{{ID: 0, Addr: cfg.Self}}, sequencer: 0}
	ep.pending = ep.view.clone()
	ep.globalSeq = cfg.FirstSeq
	ep.maxSeen = cfg.FirstSeq
	ep.lastRecv = map[MemberID]uint32{0: cfg.FirstSeq}
	ep.dedup = make(map[MemberID]dedupEntry)
	return ep, nil
}

// NewJoiner builds an endpoint for JoinGroup. done is called once the join
// concludes. Call Start after binding the transport to begin locating the
// sequencer.
func NewJoiner(cfg Config, done func(error)) (*Endpoint, error) {
	ep, err := newEndpoint(cfg)
	if err != nil {
		return nil, err
	}
	ep.st = stJoining
	ep.self = noMember
	if done != nil {
		ep.joinDone = append(ep.joinDone, done)
	}
	return ep, nil
}

// Start boots the endpoint's protocol activity: the creator orders its own
// join (so the stream begins with a membership event, exactly as later joins
// appear to existing members) and a joiner begins soliciting the sequencer.
// Call exactly once, after the transport delivers inbound packets to
// HandlePacket.
func (ep *Endpoint) Start() {
	ep.mu.Lock()
	switch {
	case ep.closed:
	case ep.isSeq && ep.globalSeq == ep.cfg.FirstSeq:
		ep.orderLocked(KindJoin, 0, 0, encodeView(ep.pending, ep.cfg.FirstSeq+1))
		ep.armSyncLocked()
	case ep.st == stJoining:
		ep.sendJoinReqLocked()
	}
	ep.mu.Unlock()
	ep.drain()
}

func newEndpoint(cfg Config) (*Endpoint, error) {
	if cfg.Group == 0 || cfg.Self == 0 {
		return nil, errors.New("core: Group and Self addresses are required")
	}
	if cfg.Transport == nil || cfg.Clock == nil {
		return nil, errors.New("core: Transport and Clock are required")
	}
	cfg.applyDefaults()
	hist := newHistory(cfg.HistorySize)
	// Seed the sequence space: a creator reforming a group from a durable
	// log starts past the recovered history (a joiner re-bases at its join
	// regardless). Seqnos start at FirstSeq+1; the default is 1.
	hist.floor = cfg.FirstSeq
	return &Endpoint{
		cfg:         cfg,
		hist:        hist,
		bbCache:     make(map[bbKey][]byte),
		nextDeliver: cfg.FirstSeq + 1,
	}, nil
}

// --- Locking and upcall discipline -----------------------------------------
//
// Handlers mutate state under ep.mu and enqueue side effects (transport
// sends, deliveries, call completions) as actions. Actions run outside the
// lock, in enqueue order, by a single drainer at a time; this keeps
// deliveries totally ordered while letting action code (including FLIP
// loopback, which re-enters HandlePacket synchronously) call back into the
// endpoint freely.

// enqueue records a side effect. Caller holds ep.mu.
func (ep *Endpoint) enqueue(f func()) { ep.actions = append(ep.actions, f) }

// failSendQLocked fails every queued send — every payload of every op — and
// empties the queue.
func (ep *Endpoint) failSendQLocked(err error) {
	for _, op := range ep.sendQ {
		dones := op.dones
		ep.enqueue(func() {
			for _, d := range dones {
				d(err)
			}
		})
	}
	ep.sendQ = nil
	ep.syncSendGaugesLocked()
}

// syncSendGaugesLocked reconciles the shared send-pipeline gauges with this
// endpoint's queue. The gauges are delta-updated — each endpoint pushes only
// the change since its last sync — so every group on a node can feed the same
// node-level gauge.
func (ep *Endpoint) syncSendGaugesLocked() {
	o := &ep.cfg.Obs
	if o.SendQueue == nil && o.SendWindow == nil {
		return
	}
	var queued, active int64
	for _, op := range ep.sendQ {
		queued += int64(len(op.payloads))
		if op.active {
			active++
		}
	}
	o.SendQueue.Add(queued - ep.obsQueued)
	o.SendWindow.Add(active - ep.obsActive)
	ep.obsQueued, ep.obsActive = queued, active
}

// drain runs queued actions. Caller must NOT hold ep.mu.
func (ep *Endpoint) drain() {
	ep.mu.Lock()
	for {
		if ep.draining || len(ep.actions) == 0 {
			ep.mu.Unlock()
			return
		}
		ep.draining = true
		acts := ep.actions
		ep.actions = nil
		ep.mu.Unlock()
		for _, a := range acts {
			a()
		}
		ep.mu.Lock()
		ep.draining = false
	}
}

// after arms a timer whose callback runs under ep.mu followed by a drain.
func (ep *Endpoint) after(d time.Duration, fn func()) sim.Timer {
	return ep.cfg.Clock.AfterFunc(d, func() {
		ep.mu.Lock()
		if ep.closed {
			ep.mu.Unlock()
			return
		}
		fn()
		ep.mu.Unlock()
		ep.drain()
	})
}

// sendPkt enqueues a point-to-point packet send. Caller holds ep.mu.
func (ep *Endpoint) sendPkt(dst flip.Address, p packet) {
	p.view = ep.view.incarnation
	if stampsSender(p.typ) {
		p.sender = ep.self
	}
	p.lastRecv = ep.nextDeliver - 1
	buf := p.encode()
	ep.enqueue(func() { _ = ep.cfg.Transport.Send(dst, buf) })
}

// multicastPkt enqueues a group multicast. Caller holds ep.mu.
func (ep *Endpoint) multicastPkt(p packet) {
	p.view = ep.view.incarnation
	if stampsSender(p.typ) {
		p.sender = ep.self
	}
	p.lastRecv = ep.nextDeliver - 1
	buf := p.encode()
	ep.enqueue(func() { _ = ep.cfg.Transport.Multicast(buf) })
}

// --- Application API --------------------------------------------------------

// Send submits payload for totally-ordered broadcast. done is invoked exactly
// once, after the send completes (for resilience 0, when the message has been
// sequenced; for resilience r, when r other members have stored it) or fails.
// Sends from one endpoint are sequenced FIFO.
func (ep *Endpoint) Send(payload []byte, done func(error)) {
	ep.SendMany([][]byte{payload}, []func(error){done})
}

// SendMany submits several payloads as one burst under a single lock
// acquisition: the payloads coalesce into multi-payload batch requests
// (Config.MaxBatch) before the send window starts transmitting, so a bulk
// submitter batches deterministically — including on the sequencer itself,
// whose deferred self-ordering otherwise only coalesces with sends that race
// the drain (see deferSelfOrderLocked). Each payload's done callback is
// invoked exactly once; dones may be shorter than payloads (missing entries
// are no-ops). Per-endpoint FIFO holds across the whole burst.
func (ep *Endpoint) SendMany(payloads [][]byte, dones []func(error)) {
	ep.mu.Lock()
	for i, payload := range payloads {
		var done func(error)
		if i < len(dones) {
			done = dones[i]
		}
		if done == nil {
			done = func(error) {}
		}
		if err := ep.queueSendLocked(payload, done); err != nil {
			ep.enqueue(func() { done(err) })
		}
	}
	ep.pumpSendLocked()
	ep.syncSendGaugesLocked()
	ep.mu.Unlock()
	ep.drain()
}

// queueSendLocked appends one payload to the send queue, coalescing it into
// the newest not-yet-transmitted PB op when possible: multi-payload requests
// keep localIDs contiguous (per-sender FIFO intact) while amortising the
// sequencer's per-request work across up to MaxBatch messages.
func (ep *Endpoint) queueSendLocked(payload []byte, done func(error)) error {
	if ep.closed || ep.st == stDead {
		return ErrNotMember
	}
	if len(payload) > ep.cfg.MaxMessage {
		return fmt.Errorf("%w: %d > %d bytes", ErrTooLarge, len(payload), ep.cfg.MaxMessage)
	}
	ep.cfg.Meter.Charge(cost.UserSend, len(payload))
	p := make([]byte, len(payload))
	copy(p, payload)
	ep.nextLocalID++
	method := ep.resolveMethod(len(p))
	if n := len(ep.sendQ); n > 0 && method == MethodPB {
		last := ep.sendQ[n-1]
		if !last.sent && !last.active && last.method == MethodPB &&
			len(last.payloads) < ep.cfg.MaxBatch &&
			last.size+len(p) <= ep.cfg.MaxMessage {
			last.payloads = append(last.payloads, p)
			last.size += len(p)
			last.dones = append(last.dones, done)
			return nil
		}
	}
	op := &sendOp{localID: ep.nextLocalID, payloads: [][]byte{p}, size: len(p), method: method, dones: []func(error){done}}
	ep.sendQ = append(ep.sendQ, op)
	return nil
}

// resolveMethod picks PB or BB for a payload. Resilience forces PB: the
// tentative/accept exchange is defined over the sequencer-relayed path
// (paper §3.1 describes it for PB; the BB variant is noted as possible but
// Amoeba used PB, as do we). Leases force PB for the same reason — every
// message must take the tentative path so acceptance can gate on lease
// holders' stored-acks.
func (ep *Endpoint) resolveMethod(size int) Method {
	if ep.cfg.Resilience > 0 || ep.cfg.leasesOn() {
		return MethodPB
	}
	switch ep.cfg.Method {
	case MethodPB:
		return MethodPB
	case MethodBB:
		return MethodBB
	default:
		if size >= ep.cfg.BBThreshold {
			return MethodBB
		}
		return MethodPB
	}
}

// Leave requests an ordered departure from the group. done is invoked once
// every member has observed the leave (or on failure).
func (ep *Endpoint) Leave(done func(error)) {
	if done == nil {
		done = func(error) {}
	}
	ep.mu.Lock()
	if ep.closed || ep.st == stDead {
		ep.mu.Unlock()
		done(ErrNotMember)
		return
	}
	ep.leaveDone = append(ep.leaveDone, done)
	if len(ep.leaveDone) == 1 {
		ep.startLeaveLocked()
	}
	ep.mu.Unlock()
	ep.drain()
}

// Reset initiates recovery (the paper's ResetGroup): rebuild the group from
// reachable members, electing this endpoint as the new sequencer. minAlive is
// the minimum surviving membership required; recovery retries until it can
// assemble that many. done is invoked when a new view is installed.
func (ep *Endpoint) Reset(minAlive int, done func(error)) {
	if done == nil {
		done = func(error) {}
	}
	ep.mu.Lock()
	if ep.closed || ep.st == stDead || ep.st == stJoining {
		ep.mu.Unlock()
		done(ErrNotMember)
		return
	}
	ep.resetWaiters = append(ep.resetWaiters, done)
	ep.initiateResetLocked(minAlive)
	ep.mu.Unlock()
	ep.drain()
}

// Info returns a GetInfoGroup snapshot.
func (ep *Endpoint) Info() Info {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	v := ep.view.clone()
	return Info{
		Group:       ep.cfg.Group,
		Incarnation: v.incarnation,
		Self:        ep.self,
		Sequencer:   v.sequencer,
		IsSequencer: ep.isSeq,
		Members:     v.members,
		NextSeq:     ep.nextDeliver,
		Resilience:  ep.cfg.Resilience,
		State:       ep.st.String(),
	}
}

// Stats returns a snapshot of the endpoint's protocol counters.
func (ep *Endpoint) Stats() Stats {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return ep.stats
}

// Close abandons the endpoint without protocol interaction (a crash, from
// the group's point of view). Pending calls fail with ErrClosed.
func (ep *Endpoint) Close() {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return
	}
	ep.closed = true
	ep.st = stDead
	ep.stopTimersLocked()
	ep.flushFencedDonesLocked(nil) // these sends completed; only the ack was fenced
	ep.failSendQLocked(ErrClosed)
	for _, d := range ep.joinDone {
		d := d
		ep.enqueue(func() { d(ErrClosed) })
	}
	ep.joinDone = nil
	for _, d := range ep.leaveDone {
		d := d
		ep.enqueue(func() { d(ErrClosed) })
	}
	ep.leaveDone = nil
	for _, d := range ep.resetWaiters {
		d := d
		ep.enqueue(func() { d(ErrClosed) })
	}
	ep.resetWaiters = nil
	ep.mu.Unlock()
	ep.drain()
}

func (ep *Endpoint) stopTimersLocked() {
	for _, t := range []sim.Timer{ep.nakTimer, ep.sendTimer, ep.syncTimer,
		ep.tentTimer, ep.joinTimer, ep.fenceTimer} {
		if t != nil {
			t.Stop()
		}
	}
	ep.nakTimer, ep.sendTimer, ep.syncTimer, ep.tentTimer, ep.joinTimer, ep.fenceTimer = nil, nil, nil, nil, nil, nil
	for _, pr := range ep.statusProbe {
		if pr.timer != nil {
			pr.timer.Stop()
		}
	}
	ep.statusProbe = nil
	if ep.rec != nil {
		ep.rec.stopTimersLocked()
	}
}

// --- Packet dispatch ---------------------------------------------------------

// HandlePacket feeds one inbound FLIP message (unicast or group multicast)
// into the state machine. The hosting runtime calls this from its FLIP
// handlers.
func (ep *Endpoint) HandlePacket(m flip.Message) {
	p, err := decodePacket(m.Payload)
	if err != nil {
		return // garbled beyond the FLIP checksum: ignore
	}
	ep.mu.Lock()
	if ep.closed || ep.st == stDead {
		ep.mu.Unlock()
		return
	}
	switch p.typ {
	case ptBcast, ptAccept, ptTentative:
		// The sequencer hears these only as loopback of its own
		// relayed sends (network multicast excludes the sender); the
		// message is already sequenced and in history, so no group
		// input processing happens.
		if ep.isSeq {
			break
		}
		if p.typ == ptAccept {
			ep.cfg.Meter.Charge(cost.CtrlIn, 0)
		} else {
			ep.cfg.Meter.Charge(cost.GroupIn, 0)
		}
	case ptReq, ptBBData, ptRetrans:
		ep.cfg.Meter.Charge(cost.GroupIn, 0)
	default:
		ep.cfg.Meter.Charge(cost.CtrlIn, 0)
	}
	// Piggybacked acknowledgement state feeds the sequencer's pruning.
	if ep.isSeq && p.sender != noMember && carriesPiggyback(p.typ) {
		ep.noteLastRecvLocked(p.sender, p.lastRecv)
	}
	switch p.typ {
	// Sequencer side.
	case ptReq:
		ep.handleReq(p, m.Src)
	case ptAck:
		ep.handleAck(p)
	case ptNak:
		ep.handleNak(p, m.Src)
	case ptStatus:
		ep.handleStatus(p)
	case ptJoinReq:
		ep.handleJoinReq(p, m.Src)
	case ptLeaveReq:
		ep.handleLeaveReq(p, m.Src)
	// Member side.
	case ptBcast:
		ep.handleBcast(p, false)
	case ptRetrans:
		ep.handleBcast(p, true)
	case ptBBData:
		ep.handleBBData(p)
	case ptAccept:
		ep.handleAccept(p)
	case ptTentative:
		ep.handleTentative(p)
	case ptSync:
		ep.handleSync(p)
	case ptLost:
		ep.handleLost(p)
	case ptStatusReq:
		ep.handleStatusReq(p, m.Src)
	case ptJoinAck:
		ep.handleJoinAck(p)
	case ptStale:
		ep.handleStale(p)
	case ptHandoff:
		ep.handleHandoff(p)
	// Recovery.
	case ptResetInvite:
		ep.handleResetInvite(p, m.Src)
	case ptResetVote:
		ep.handleResetVote(p, m.Src)
	case ptResetFetch:
		ep.handleResetFetch(p, m.Src)
	case ptResetResult:
		ep.handleResetResult(p, m.Src)
	case ptResetAck:
		ep.handleResetAck(p, m.Src)
	}
	ep.mu.Unlock()
	ep.drain()
}

// DebugSnapshot renders the endpoint's ordering state for diagnostics: the
// protocol state, view, history bounds, and any tentative entries.
func (ep *Endpoint) DebugSnapshot() string {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	var tent []uint32
	held := 0
	for s := ep.hist.floor + 1; s <= ep.maxSeen; s++ {
		e, ok := ep.hist.get(s)
		if !ok {
			continue
		}
		held++
		if e.tentative {
			tent = append(tent, s)
		}
	}
	active := 0
	for _, op := range ep.sendQ {
		if op.active {
			active++
		}
	}
	return fmt.Sprintf("st=%s inc=%d self=%d seq=%d isSeq=%v members=%d pending=%d floor=%d next=%d global=%d maxSeen=%d held=%d tentative=%v window=%d/%d queued=%d batches=%d batchMsgs=%d maxBatch=%d",
		ep.st, ep.view.incarnation, ep.self, ep.view.sequencer, ep.isSeq,
		len(ep.view.members), len(ep.pending.members), ep.hist.floor,
		ep.nextDeliver, ep.globalSeq, ep.maxSeen, held, tent,
		active, ep.cfg.SendWindow, len(ep.sendQ),
		ep.stats.OrderedBatches, ep.stats.BatchedMsgs, ep.stats.MaxBatchMsgs)
}
