package core

import (
	"time"

	"amoeba/internal/flip"
	"amoeba/internal/sim"
)

// This file implements ResetGroup: recovery from processor failure. Any
// member that suspects a failure (exhausted retries, an unanswered status
// probe, or an application call to Reset) becomes a recovery coordinator.
// It invites every known member into a new epoch; members freeze and vote
// with their delivery and storage state; unresponsive members are declared
// dead after retries — the paper's explicitly unreliable failure detector.
// The coordinator computes the highest sequence number any survivor has
// contiguously stored, fetches what it lacks, installs itself as the new
// sequencer, and distributes the new view. The guarantee (paper §2.1): every
// message successfully sent before the failure is delivered in the rebuilt
// group — which holds whenever at most r members crashed, because a
// resilience-r message was stored by r members plus the sequencer before its
// send completed. If fewer than the required minimum survive, recovery keeps
// retrying and the group stays blocked, exactly as specified.
//
// Concurrent recoveries resolve by precedence: higher (epoch, coordinator
// address) wins; a lower-precedence coordinator abdicates and votes. A voter
// whose coordinator goes silent starts its own recovery at a higher epoch —
// "the recovery algorithm starts again until it succeeds".

// resetVote is one member's recovery state report.
type resetVote struct {
	id        MemberID
	addr      flip.Address
	delivered uint32 // nextDeliver-1 at vote time
	top       uint32 // contiguous storage high-water mark
	floor     uint32 // history floor
}

// recovery tracks one endpoint's participation in a recovery epoch.
type recovery struct {
	epoch     uint32
	coordAddr flip.Address
	coordID   MemberID

	// Coordinator state.
	coordinating bool
	minAlive     int
	invited      []Member
	votes        map[flip.Address]resetVote
	round        int
	target       uint32
	fetchFrom    flip.Address
	fetchTries   int
	resultSent   bool
	resultAcks   map[flip.Address]bool
	resultTries  int
	timer        sim.Timer

	// Voter state.
	watchdog sim.Timer
}

func (r *recovery) stopTimersLocked() {
	if r.timer != nil {
		r.timer.Stop()
		r.timer = nil
	}
	if r.watchdog != nil {
		r.watchdog.Stop()
		r.watchdog = nil
	}
}

// precedes reports whether recovery (e1,a1) outranks (e2,a2).
func precedes(e1 uint32, a1 flip.Address, e2 uint32, a2 flip.Address) bool {
	if e1 != e2 {
		return e1 > e2
	}
	return a1 > a2
}

// highestEpochLocked returns the largest recovery epoch this endpoint has
// observed.
func (ep *Endpoint) highestEpochLocked() uint32 {
	e := ep.view.incarnation
	if ep.rec != nil && ep.rec.epoch > e {
		e = ep.rec.epoch
	}
	return e
}

// initiateResetLocked starts a recovery with this endpoint as coordinator.
func (ep *Endpoint) initiateResetLocked(minAlive int) {
	if ep.st == stDead || ep.st == stJoining {
		return
	}
	if minAlive < 1 {
		minAlive = 1
	}
	if ep.st == stCoordinating && ep.rec != nil && ep.rec.coordinating {
		if minAlive > ep.rec.minAlive {
			ep.rec.minAlive = minAlive
		}
		return
	}
	epoch := ep.highestEpochLocked() + 1
	if ep.rec != nil {
		ep.rec.stopTimersLocked()
	}
	ep.freezeLocked()
	ep.st = stCoordinating
	rec := &recovery{
		epoch:        epoch,
		coordAddr:    ep.cfg.Self,
		coordID:      ep.self,
		coordinating: true,
		minAlive:     minAlive,
		votes:        make(map[flip.Address]resetVote),
	}
	for _, m := range ep.pending.members {
		if m.ID == ep.self {
			continue
		}
		rec.invited = append(rec.invited, m)
	}
	rec.votes[ep.cfg.Self] = resetVote{
		id: ep.self, addr: ep.cfg.Self,
		delivered: ep.nextDeliver - 1,
		top:       ep.hist.contiguousTop(),
		floor:     ep.hist.floor,
	}
	ep.rec = rec
	ep.sendInvitesLocked()
}

// freezeLocked suspends normal-operation timers for the recovery epoch.
func (ep *Endpoint) freezeLocked() {
	for _, t := range []sim.Timer{ep.nakTimer, ep.sendTimer, ep.syncTimer, ep.tentTimer} {
		if t != nil {
			t.Stop()
		}
	}
	ep.nakTimer, ep.sendTimer, ep.syncTimer, ep.tentTimer = nil, nil, nil, nil
	ep.nakBackoff = 0
	// A frozen member must not serve lease reads: its silence is what lets
	// a deposed sequencer's granting stop (lease.go rule 2), and silence
	// only helps if we also stop honouring the lease we hold.
	ep.leaseDropLocked()
	for _, pr := range ep.statusProbe {
		if pr.timer != nil {
			pr.timer.Stop()
		}
	}
	ep.statusProbe = nil
}

// sendInvitesLocked multicasts and unicasts the recovery invitation to every
// member that has not voted yet.
func (ep *Endpoint) sendInvitesLocked() {
	rec := ep.rec
	ep.multicastPkt(packet{typ: ptResetInvite, seq: rec.epoch})
	for _, m := range rec.invited {
		if _, ok := rec.votes[m.Addr]; ok {
			continue
		}
		ep.sendPkt(m.Addr, packet{typ: ptResetInvite, seq: rec.epoch})
	}
	rec.timer = ep.after(ep.cfg.ResetTimeout, func() { ep.voteDeadlineLocked(rec) })
}

// voteDeadlineLocked advances the coordinator when the vote window closes.
func (ep *Endpoint) voteDeadlineLocked(rec *recovery) {
	if ep.rec != rec || !rec.coordinating || ep.st != stCoordinating {
		return
	}
	missing := 0
	for _, m := range rec.invited {
		if _, ok := rec.votes[m.Addr]; !ok {
			missing++
		}
	}
	if missing > 0 && rec.round < ep.cfg.ResetRetries {
		rec.round++
		ep.sendInvitesLocked()
		return
	}
	if len(rec.votes) < rec.minAlive {
		// Not enough survivors: the group blocks, retrying until
		// processors recover (paper §2.1).
		rec.round = 0
		rec.timer = ep.after(2*ep.cfg.ResetTimeout, func() {
			if ep.rec == rec && rec.coordinating {
				ep.sendInvitesLocked()
			}
		})
		return
	}
	// Non-voters are hereby declared dead.
	ep.startFetchLocked(rec)
}

// startFetchLocked brings the coordinator's history up to the recovery
// target.
func (ep *Endpoint) startFetchLocked(rec *recovery) {
	rec.target = 0
	var donor flip.Address
	for _, v := range rec.votes {
		if v.top > rec.target {
			rec.target = v.top
			donor = v.addr
		}
	}
	myTop := ep.hist.contiguousTop()
	if myTop >= rec.target {
		ep.finishRecoveryLocked(rec)
		return
	}
	rec.fetchFrom = donor
	rec.fetchTries++
	if rec.fetchTries > ep.cfg.ResetRetries+1 {
		// Donor unresponsive: restart the whole recovery at a higher
		// epoch; the dead donor will not vote again.
		ep.restartRecoveryLocked(rec)
		return
	}
	ep.sendPkt(donor, packet{typ: ptResetFetch, seq: myTop + 1, aux: rec.target})
	rec.timer = ep.after(ep.cfg.ResetTimeout, func() {
		if ep.rec == rec && rec.coordinating && ep.st == stCoordinating {
			ep.startFetchLocked(rec)
		}
	})
}

// restartRecoveryLocked abandons the current epoch and starts a fresh one.
func (ep *Endpoint) restartRecoveryLocked(rec *recovery) {
	rec.stopTimersLocked()
	ep.rec = nil
	ep.st = stNormal // transiently; initiateReset freezes again
	ep.initiateResetLocked(rec.minAlive)
}

// finishRecoveryLocked installs the new view with this endpoint as
// sequencer and distributes it.
func (ep *Endpoint) finishRecoveryLocked(rec *recovery) {
	if rec.resultSent {
		return
	}
	rec.resultSent = true
	startSeq := rec.target + 1

	newView := view{incarnation: rec.epoch, sequencer: ep.self}
	for _, v := range rec.votes {
		newView.add(Member{ID: v.id, Addr: v.addr})
	}

	// Anything a deposed sequencer ordered beyond the target dies here;
	// no survivor delivered past the target (their votes bound it).
	ep.hist.truncateAbove(rec.target)
	if ep.maxSeen > rec.target {
		ep.maxSeen = rec.target
	}
	// Fence before anointing: anointment completes sends whose entries an
	// old-regime lease holder may not have stored; their callbacks (and
	// all delivery/acceptance) wait until every old grant has expired.
	ep.armLeaseFenceLocked()
	// Surviving tentative messages are anointed: they were ordered, the
	// survivors agree on them, and keeping them preserves total order.
	for s := ep.hist.floor + 1; s <= rec.target; s++ {
		if e, ok := ep.hist.get(s); ok && e.tentative {
			e.tentative = false
			if e.kind == KindData || e.kind == KindBatch {
				ep.completeSendsUpToLocked(e.sender, e.lastLocalID())
			}
		}
	}

	// Order the reset itself as the first message of the new epoch.
	viewBytes := encodeView(newView, startSeq)
	ep.view.incarnation = rec.epoch // stamp outgoing packets with the new epoch
	ep.view.sequencer = ep.self
	ep.pending = newView.clone()
	ep.isSeq = true
	ep.globalSeq = startSeq
	ep.hist.forceAdd(&entry{seq: startSeq, kind: KindReset, sender: ep.self, payload: viewBytes})
	if ep.maxSeen < startSeq {
		ep.maxSeen = startSeq
	}
	ep.lastRecv = make(map[MemberID]uint32, len(rec.votes))
	for _, v := range rec.votes {
		if v.id == ep.self {
			continue
		}
		ep.lastRecv[v.id] = v.delivered
	}
	ep.leavers = nil
	ep.leaveSeq = 0
	ep.rebuildDedupLocked()
	ep.leaseSeedHeardLocked()

	rec.resultAcks = map[flip.Address]bool{ep.cfg.Self: true}
	ep.sendResultLocked(rec, viewBytes)
	ep.maybeCompleteAfterAcksLocked(rec) // a solo survivor needs no acks
}

// maybeCompleteAfterAcksLocked finishes the recovery once every voter has
// installed the new view.
func (ep *Endpoint) maybeCompleteAfterAcksLocked(rec *recovery) {
	if ep.rec != rec || !rec.resultSent || ep.st != stCoordinating {
		return
	}
	for _, v := range rec.votes {
		if !rec.resultAcks[v.addr] {
			return
		}
	}
	ep.completeRecoveryLocked()
}

// sendResultLocked distributes (and re-distributes) the new view.
func (ep *Endpoint) sendResultLocked(rec *recovery, viewBytes []byte) {
	ep.multicastPkt(packet{typ: ptResetResult, seq: rec.epoch, payload: viewBytes})
	for _, v := range rec.votes {
		if rec.resultAcks[v.addr] {
			continue
		}
		ep.sendPkt(v.addr, packet{typ: ptResetResult, seq: rec.epoch, payload: viewBytes})
	}
	rec.timer = ep.after(ep.cfg.ResetTimeout, func() {
		if ep.rec != rec || ep.st != stCoordinating {
			return
		}
		for _, v := range rec.votes {
			if !rec.resultAcks[v.addr] {
				rec.resultTries++
				if rec.resultTries > ep.cfg.ResetRetries {
					// A voter died between vote and ack:
					// rebuild once more without it.
					ep.restartRecoveryLocked(rec)
					return
				}
				ep.sendResultLocked(rec, viewBytes)
				return
			}
		}
	})
}

// completeRecoveryLocked returns the endpoint to normal operation in the new
// epoch.
func (ep *Endpoint) completeRecoveryLocked() {
	rec := ep.rec
	if rec != nil {
		rec.stopTimersLocked()
	}
	ep.rec = nil
	ep.st = stNormal
	ep.stats.Resets++
	ep.cfg.Obs.Flight.Recordf(ep.cfg.Obs.Tag, "recovery complete: incarnation %d, %d members, sequencer %d (self=%d)", ep.view.incarnation, len(ep.view.members), ep.view.sequencer, ep.self)
	for _, d := range ep.resetWaiters {
		d := d
		ep.enqueue(func() { d(nil) })
	}
	ep.resetWaiters = nil
	if ep.isSeq {
		ep.armSyncLocked()
	}
	ep.deliverReadyLocked()
	// Resume (or re-aim) the in-flight send window at the new sequencer.
	// Retransmission happens in FIFO order: the new sequencer gates
	// out-of-order localIDs, so the window re-establishes itself without
	// double ordering or reordering whatever the old regime did or did not
	// sequence.
	for _, op := range ep.sendQ {
		if op.active {
			op.retries = 0
		}
	}
	ep.resendWindowLocked()
	ep.checkGapLocked()
}

// --- Handlers ----------------------------------------------------------------

// handleResetInvite processes a recovery invitation (any member).
func (ep *Endpoint) handleResetInvite(p packet, from flip.Address) {
	if ep.st == stDead || ep.st == stJoining {
		return
	}
	epoch := p.seq
	if epoch <= ep.view.incarnation {
		return // stale epoch
	}
	if ep.rec != nil {
		cur := ep.rec
		curAddr := cur.coordAddr
		if !precedes(epoch, from, cur.epoch, curAddr) {
			if epoch == cur.epoch && from == curAddr && !cur.coordinating {
				// Duplicate invite from our coordinator: re-vote.
				ep.voteLocked(cur)
			}
			return
		}
		// Higher-precedence recovery: abdicate/defect to it.
		cur.stopTimersLocked()
	}
	ep.freezeLocked()
	ep.st = stRecovering
	rec := &recovery{epoch: epoch, coordAddr: from, coordID: p.sender}
	ep.rec = rec
	ep.voteLocked(rec)
}

// voteLocked sends this member's recovery vote and arms the
// dead-coordinator watchdog.
func (ep *Endpoint) voteLocked(rec *recovery) {
	ep.sendPkt(rec.coordAddr, packet{
		typ: ptResetVote, seq: rec.epoch,
		aux: ep.hist.contiguousTop(), aux2: ep.hist.floor,
	})
	if rec.watchdog != nil {
		rec.watchdog.Stop()
	}
	rec.watchdog = ep.after(time.Duration(ep.cfg.ResetRetries+2)*ep.cfg.ResetTimeout, func() {
		if ep.rec != rec || ep.st != stRecovering {
			return
		}
		// Coordinator went silent mid-recovery: take over.
		ep.initiateResetLocked(ep.cfg.MinSurvivors)
	})
}

// handleResetVote records a vote (coordinator side).
func (ep *Endpoint) handleResetVote(p packet, from flip.Address) {
	rec := ep.rec
	if rec == nil || !rec.coordinating || ep.st != stCoordinating || p.seq != rec.epoch {
		return
	}
	if _, ok := rec.votes[from]; ok {
		return
	}
	rec.votes[from] = resetVote{
		id: p.sender, addr: from,
		delivered: p.lastRecv, top: p.aux, floor: p.aux2,
	}
	// All invited present: close the vote early.
	for _, m := range rec.invited {
		if _, ok := rec.votes[m.Addr]; !ok {
			return
		}
	}
	if rec.timer != nil {
		rec.timer.Stop()
		rec.timer = nil
	}
	if !rec.resultSent {
		ep.startFetchLocked(rec)
	}
}

// handleResetFetch serves stored messages to a recovering coordinator. Unlike
// ordinary retransmission, tentative entries are served too: they were
// ordered, and re-anointing them preserves total order.
func (ep *Endpoint) handleResetFetch(p packet, from flip.Address) {
	if ep.st == stDead || ep.st == stJoining {
		return
	}
	lo, hi := p.seq, p.aux
	if hi < lo {
		return
	}
	if hi-lo >= nakBatch*4 {
		hi = lo + nakBatch*4 - 1
	}
	var served *entry
	for s := lo; s <= hi; s++ {
		e, ok := ep.hist.get(s)
		if !ok || e == served {
			continue // batch entries cover several seqnos: send once
		}
		served = e
		ep.stats.Retransmitted++
		ep.sendPkt(from, packet{
			typ: ptRetrans, kind: e.kind, seq: e.seq, localID: e.localID,
			aux: ep.hist.floor, aux2: uint32(e.sender), payload: e.payload,
		})
	}
}

// handleResetResult installs the new view (voter side).
func (ep *Endpoint) handleResetResult(p packet, from flip.Address) {
	epoch := p.seq
	if ep.st == stNormal && ep.view.incarnation == epoch {
		// Duplicate result after we already installed it: re-ack.
		ep.sendPkt(from, packet{typ: ptResetAck, seq: epoch})
		return
	}
	if ep.st != stRecovering || ep.rec == nil || ep.rec.epoch != epoch {
		return
	}
	v, startSeq, err := decodeView(p.payload)
	if err != nil {
		return
	}
	rec := ep.rec
	rec.stopTimersLocked()
	ep.rec = nil
	// Same fence as the coordinator's (finishRecoveryLocked): the
	// anointment below makes previously-tentative entries deliverable, and
	// nothing anointed may become visible here while an old-regime lease
	// holder could still serve reads that lack it.
	ep.armLeaseFenceLocked()

	if _, ok := v.findAddr(ep.cfg.Self); !ok {
		// Voted but excluded: treated as dead; the application learns
		// via KindExpelled.
		ep.expelledLocked()
		return
	}
	target := startSeq - 1
	ep.hist.truncateAbove(target)
	// Anoint surviving tentatives; the new epoch's prefix includes them.
	for s := ep.hist.floor + 1; s <= target; s++ {
		if e, ok := ep.hist.get(s); ok && e.tentative {
			e.tentative = false
			if e.kind == KindData || e.kind == KindBatch {
				ep.completeSendsUpToLocked(e.sender, e.lastLocalID())
			}
		}
	}
	// Install the reset message; it delivers in order like everything
	// else.
	if ep.nextDeliver <= startSeq {
		if _, ok := ep.hist.get(startSeq); !ok {
			pl := make([]byte, len(p.payload))
			copy(pl, p.payload)
			ep.hist.forceAdd(&entry{seq: startSeq, kind: KindReset, sender: v.sequencer, payload: pl})
		}
	}
	ep.maxSeen = startSeq
	// Transport-level switch happens now; the application-level view
	// changes when KindReset is delivered.
	ep.view.incarnation = epoch
	ep.view.sequencer = v.sequencer
	if m, ok := v.find(v.sequencer); ok {
		ep.view.add(m)
	}
	ep.isSeq = false
	ep.sendPkt(from, packet{typ: ptResetAck, seq: epoch})
	ep.completeRecoveryLocked()
}

// handleResetAck counts view installations (coordinator side).
func (ep *Endpoint) handleResetAck(p packet, from flip.Address) {
	rec := ep.rec
	if rec == nil || !rec.coordinating || !rec.resultSent || p.seq != rec.epoch {
		return
	}
	rec.resultAcks[from] = true
	ep.maybeCompleteAfterAcksLocked(rec)
}
