package core

// entry is one ordered message retained in a history buffer.
type entry struct {
	seq     uint32
	kind    MsgKind
	sender  MemberID
	localID uint32
	payload []byte
	// tentative marks a resilience-degree message that has not yet been
	// accepted (sequencer side: still collecting acks; member side:
	// buffered awaiting the accept).
	tentative bool
	// acks counts resilience acknowledgements received (sequencer only).
	acks int
	// acked records which members acked, to ignore duplicates.
	acked map[MemberID]bool
}

// history is the bounded buffer of recently ordered messages kept by the
// sequencer — and, in this implementation as in Amoeba's, by every member —
// to serve retransmissions and to survive recovery. The paper's experiments
// use a capacity of 128 messages.
//
// Entries are stored for a contiguous range (floor, top]: floor is the
// highest pruned seqno, top the highest stored. The sequencer refuses to
// order new messages when the buffer is full until acknowledgement state
// (piggybacked lastRecv values) lets it prune.
type history struct {
	cap     int
	floor   uint32 // everything ≤ floor has been pruned
	entries map[uint32]*entry
}

func newHistory(capacity int) *history {
	return &history{cap: capacity, entries: make(map[uint32]*entry)}
}

// add stores an entry. It reports false when the buffer is full.
func (h *history) add(e *entry) bool {
	if len(h.entries) >= h.cap {
		return false
	}
	h.entries[e.seq] = e
	return true
}

// forceAdd stores an entry even when the buffer is full. Recovery uses it
// for the KindReset entry that anchors a new epoch: the cap exists to
// backpressure data traffic, but dropping the reset entry would leave its
// holder unable to ever deliver past startSeq — a full history must not be
// able to wedge a recovery.
func (h *history) forceAdd(e *entry) { h.entries[e.seq] = e }

// full reports whether the buffer cannot accept another entry.
func (h *history) full() bool { return len(h.entries) >= h.cap }

// get returns the entry for seq, if retained.
func (h *history) get(seq uint32) (*entry, bool) {
	e, ok := h.entries[seq]
	return e, ok
}

// pruneTo discards entries with seq ≤ upTo, raising the floor.
func (h *history) pruneTo(upTo uint32) {
	if upTo <= h.floor {
		return
	}
	// Iterate whichever is smaller: the seq range or the stored set (a
	// joiner raising its floor by millions must not spin).
	if int(upTo-h.floor) <= len(h.entries) {
		for s := h.floor + 1; s <= upTo; s++ {
			delete(h.entries, s)
		}
	} else {
		for s := range h.entries {
			if s <= upTo {
				delete(h.entries, s)
			}
		}
	}
	h.floor = upTo
}

// truncateAbove discards entries with seq > top. Recovery uses it to drop
// messages ordered by a deposed sequencer beyond the new view's starting
// point.
func (h *history) truncateAbove(top uint32) {
	for s := range h.entries {
		if s > top {
			delete(h.entries, s)
		}
	}
}

// contiguousTop returns the highest seq such that every entry in
// (floor, seq] is present. Recovery votes report this value: it is the range
// the member can redistribute.
func (h *history) contiguousTop() uint32 {
	top := h.floor
	for {
		if _, ok := h.entries[top+1]; !ok {
			return top
		}
		top++
	}
}

// len reports the number of retained entries.
func (h *history) len() int { return len(h.entries) }
