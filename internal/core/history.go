package core

import "time"

// entry is one ordered message — or one ordered batch of messages — retained
// in a history buffer. A KindBatch entry covers the contiguous seqno range
// [seq, seq+count-1] and the contiguous localID range
// [localID, localID+count-1]; every other kind covers exactly one of each.
type entry struct {
	seq     uint32
	kind    MsgKind
	sender  MemberID
	localID uint32
	// count is the number of messages the entry covers; 0 and 1 both mean
	// a single message (zero value keeps single-message construction
	// unchanged).
	count uint16
	// payload is the wire body: the application payload for single
	// messages, the encoded batch body (see encodeBatchBody) for
	// KindBatch.
	payload []byte
	// parts are the decoded batch payloads (KindBatch only), aliasing
	// payload; decoded once at entry construction.
	parts [][]byte
	// tentative marks a resilience-degree message that has not yet been
	// accepted (sequencer side: still collecting acks; member side:
	// buffered awaiting the accept). Batches are accepted as a unit.
	tentative bool
	// acks counts resilience acknowledgements received (sequencer only).
	acks int
	// acked records which members acked, to ignore duplicates.
	acked map[MemberID]bool
	// orderedAt is the clock reading when the sequencer ordered the entry,
	// recorded only when ack-completion latency is being observed (0
	// otherwise); cleared once the acceptance latency is recorded.
	orderedAt time.Duration
}

// span is the number of sequence numbers the entry covers.
func (e *entry) span() uint32 {
	if e.count > 1 {
		return uint32(e.count)
	}
	return 1
}

// lastSeq is the highest sequence number the entry covers.
func (e *entry) lastSeq() uint32 { return e.seq + e.span() - 1 }

// lastLocalID is the highest sender-local id the entry covers.
func (e *entry) lastLocalID() uint32 { return e.localID + e.span() - 1 }

// newBatchEntry builds a KindBatch entry from a wire body, copying the body
// and decoding the per-message payloads. It returns nil if the body is
// malformed (a corrupt packet that slipped past the FLIP checksum).
func newBatchEntry(seq uint32, sender MemberID, localID uint32, body []byte) *entry {
	pl := make([]byte, len(body))
	copy(pl, body)
	parts, err := decodeBatchBody(pl)
	if err != nil || len(parts) > maxBatchWire {
		return nil
	}
	return &entry{
		seq: seq, kind: KindBatch, sender: sender, localID: localID,
		count: uint16(len(parts)), payload: pl, parts: parts,
	}
}

// history is the bounded buffer of recently ordered messages kept by the
// sequencer — and, in this implementation as in Amoeba's, by every member —
// to serve retransmissions and to survive recovery. The paper's experiments
// use a capacity of 128 messages.
//
// Entries are stored for a contiguous range (floor, top]: floor is the
// highest pruned seqno, top the highest stored. A batch entry is indexed
// under every seqno it covers, so per-seqno lookups (gap detection, delivery,
// retransmission) need no range search; capacity is counted in seqnos, so a
// 16-message batch consumes 16 slots and backpressure still bounds the
// number of outstanding messages, not requests. The sequencer refuses to
// order new messages when the buffer is full until acknowledgement state
// (piggybacked lastRecv values) lets it prune.
type history struct {
	cap     int
	floor   uint32 // everything ≤ floor has been pruned
	entries map[uint32]*entry
}

func newHistory(capacity int) *history {
	return &history{cap: capacity, entries: make(map[uint32]*entry)}
}

// hasRoom reports whether n more seqno slots fit.
func (h *history) hasRoom(n int) bool { return len(h.entries)+n <= h.cap }

// add stores an entry under every seqno it covers. It reports false when the
// buffer lacks room for the entry's full span.
func (h *history) add(e *entry) bool {
	if !h.hasRoom(int(e.span())) {
		return false
	}
	for s := e.seq; s <= e.lastSeq(); s++ {
		h.entries[s] = e
	}
	return true
}

// forceAdd stores an entry even when the buffer is full. Recovery uses it
// for the KindReset entry that anchors a new epoch: the cap exists to
// backpressure data traffic, but dropping the reset entry would leave its
// holder unable to ever deliver past startSeq — a full history must not be
// able to wedge a recovery.
func (h *history) forceAdd(e *entry) {
	for s := e.seq; s <= e.lastSeq(); s++ {
		h.entries[s] = e
	}
}

// full reports whether the buffer cannot accept another single-message entry.
func (h *history) full() bool { return !h.hasRoom(1) }

// get returns the entry covering seq, if retained.
func (h *history) get(seq uint32) (*entry, bool) {
	e, ok := h.entries[seq]
	return e, ok
}

// pruneTo discards entries with seq ≤ upTo, raising the floor. A batch entry
// straddling upTo keeps its higher seqnos indexed; only the covered slots are
// released.
func (h *history) pruneTo(upTo uint32) {
	if upTo <= h.floor {
		return
	}
	// Iterate whichever is smaller: the seq range or the stored set (a
	// joiner raising its floor by millions must not spin).
	if int(upTo-h.floor) <= len(h.entries) {
		for s := h.floor + 1; s <= upTo; s++ {
			delete(h.entries, s)
		}
	} else {
		for s := range h.entries {
			if s <= upTo {
				delete(h.entries, s)
			}
		}
	}
	h.floor = upTo
}

// truncateAbove discards entries with seq > top. Recovery uses it to drop
// messages ordered by a deposed sequencer beyond the new view's starting
// point. The truncation point always falls on an entry boundary: entries are
// stored atomically (all seqnos or none), so every survivor's contiguous top
// — and therefore the recovery target, their maximum — ends exactly where an
// entry ends.
func (h *history) truncateAbove(top uint32) {
	for s := range h.entries {
		if s > top {
			delete(h.entries, s)
		}
	}
}

// contiguousTop returns the highest seq such that every entry in
// (floor, seq] is present. Recovery votes report this value: it is the range
// the member can redistribute.
func (h *history) contiguousTop() uint32 {
	top := h.floor
	for {
		if _, ok := h.entries[top+1]; !ok {
			return top
		}
		top++
	}
}

// len reports the number of retained seqno slots.
func (h *history) len() int { return len(h.entries) }
