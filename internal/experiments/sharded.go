package experiments

import (
	"fmt"

	"amoeba/internal/netsim"
)

// ShardedKV models the kv subsystem's scaling claim on the paper's hardware:
// a sharded key-value store runs one independent sequencer group per shard
// (members = the shard's replication factor), so aggregate ordering
// throughput multiplies with the shard count instead of saturating a single
// sequencer machine — Figure 6's parallel-groups effect put to work for a
// storage workload. All shards share the one 10 Mbit/s Ethernet, so the
// scaling eventually hits the wire (the paper's collision-driven decline);
// on switched modern networks the linear region extends accordingly.
func ShardedKV(model netsim.CostModel) (*Table, error) {
	t := &Table{
		ID:        "Sharded KV",
		Title:     "aggregate kv write throughput vs shard count (3-way replicated shards, 0 B, PB)",
		PaperNote: "extends Figure 6: disjoint sequencer groups multiply throughput until the shared wire saturates",
		Columns:   []string{"shards", "replicas/shard", "aggregate (msg/s)", "speedup"},
	}
	var base float64
	for _, shards := range []int{1, 2, 4, 8} {
		total, err := ParallelGroupsPoint(model, shards, 3)
		if err != nil {
			return nil, err
		}
		if base == 0 {
			base = total
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", shards),
			"3",
			msgsPerS(total),
			fmt.Sprintf("%.2fx", total/base),
		})
	}
	return t, nil
}
