package experiments

import (
	"fmt"
	"time"

	"amoeba/internal/cm"
	"amoeba/internal/core"
	"amoeba/internal/cost"
	"amoeba/internal/flip"
	"amoeba/internal/netsim"
	"amoeba/internal/rpc"
	"amoeba/internal/sim"
)

// RPCComparison reproduces the §4 claim that a null group send is slightly
// FASTER than a null RPC on the same hardware (2.7 ms vs 2.8 ms): the
// sequencer handles a group message entirely in the kernel, while an RPC
// must cross into the server's user thread and back.
func RPCComparison(model netsim.CostModel) (*Table, error) {
	// Group send delay, group of 2.
	g, err := NewSimGroup(GroupParams{Members: 2, Method: core.MethodPB, Model: model, Seed: 1})
	if err != nil {
		return nil, err
	}
	groupDelay := g.MeasureDelay(1, 0, DelayRounds)

	// Null RPC delay on the same simulated hardware.
	engine := sim.NewEngine(1)
	net := netsim.New(engine, model)
	clock := sim.NewEngineClock(engine)
	stS := net.AttachStation("server")
	stC := net.AttachStation("client")
	stackS := flip.NewStack(flip.Config{Station: stS, Clock: clock, Meter: stS})
	stackC := flip.NewStack(flip.Config{Station: stC, Clock: clock, Meter: stC})
	srv, err := rpc.NewServer(rpc.Config{Stack: stackS, Clock: clock, Meter: stS}, 0,
		func(req []byte) ([]byte, flip.Address) { return nil, 0 })
	if err != nil {
		return nil, err
	}
	defer srv.Close()

	// The rpc.Client.Call API blocks on a channel, which cannot run inside
	// a single-threaded simulation; drive the client's wire protocol
	// directly instead, charging exactly what the real client charges.
	clientAddr := stackC.AllocAddress()
	rounds := DelayRounds
	var total, started time.Duration
	done := 0
	var sendNext func()
	stackC.Register(clientAddr, func(m flip.Message) {
		if _, _, ok := rpc.DecodeReply(m.Payload); !ok {
			return
		}
		stC.Charge(cost.CtrlIn, 0)      // reply decode + matching
		stC.Charge(cost.UserDeliver, 0) // unblock the calling thread
		total += stC.Now() - started
		done++
		if done < rounds {
			sendNext()
		}
	})
	txn := uint32(0)
	sendNext = func() {
		txn++
		started = stC.Now()
		stC.Charge(cost.UserSend, 0) // syscall + context switch into Call
		stC.Charge(cost.GroupOut, 0) // RPC output processing (top layer)
		_ = stackC.Send(clientAddr, srv.Addr(), rpc.EncodeRequest(txn, clientAddr, nil))
	}
	engine.After(0, sendNext)
	engine.RunWhile(func() bool { return done < rounds })
	rpcDelay := total / time.Duration(rounds)

	t := &Table{
		ID:        "§4 RPC comparison",
		Title:     "null group send (group of 2, PB) vs null RPC",
		PaperNote: "group send 2.7 ms, RPC 2.8 ms: group communication ≈0.1 ms faster",
		Columns:   []string{"primitive", "delay (ms)"},
	}
	t.Rows = [][]string{
		{"SendToGroup (2 members)", ms(float64(groupDelay) / float64(time.Millisecond))},
		{"null RPC", ms(float64(rpcDelay) / float64(time.Millisecond))},
		{"difference", ms(float64(rpcDelay-groupDelay) / float64(time.Millisecond))},
	}
	return t, nil
}

// CMComparison reproduces the §6 comparison with the Chang–Maxemchuk
// token-site protocol: CM broadcasts both data and acknowledgements, so each
// broadcast interrupts every machine twice (2(n−1) interrupts vs Amoeba's
// n) and uses 2–3 messages; Amoeba PB uses exactly 2 in the failure-free
// case.
func CMComparison(model netsim.CostModel) (*Table, error) {
	const members = 8
	const rounds = 50

	// Amoeba PB.
	g, err := NewSimGroup(GroupParams{Members: members, Method: core.MethodPB, Model: model, Seed: 1})
	if err != nil {
		return nil, err
	}
	intBefore := totalInterrupts(g.Stations)
	framesBefore := totalFrames(g.Stations)
	amoebaDelay := g.MeasureDelay(1, 0, rounds)
	amoebaInts := float64(totalInterrupts(g.Stations)-intBefore) / rounds
	amoebaFrames := float64(totalFrames(g.Stations)-framesBefore) / rounds

	// Chang–Maxemchuk on identical hardware.
	cmDelay, cmInts, cmFrames, err := cmDelayRun(model, members, rounds)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:        "§6 CM comparison",
		Title:     fmt.Sprintf("Amoeba PB vs Chang–Maxemchuk, %d members, 0-byte messages", members),
		PaperNote: "CM: 2–3 messages, 2(n−1) interrupts per broadcast; Amoeba: 2 messages, n interrupts",
		Columns:   []string{"protocol", "delay (ms)", "interrupts/msg", "frames/msg"},
	}
	t.Rows = [][]string{
		{"Amoeba PB", ms(float64(amoebaDelay) / float64(time.Millisecond)),
			fmt.Sprintf("%.1f", amoebaInts), fmt.Sprintf("%.1f", amoebaFrames)},
		{"Chang–Maxemchuk", ms(float64(cmDelay) / float64(time.Millisecond)),
			fmt.Sprintf("%.1f", cmInts), fmt.Sprintf("%.1f", cmFrames)},
	}
	return t, nil
}

func totalInterrupts(stations []*netsim.Station) uint64 {
	var n uint64
	for _, s := range stations {
		n += s.Interrupts()
	}
	return n
}

func totalFrames(stations []*netsim.Station) uint64 {
	var n uint64
	for _, s := range stations {
		n += s.FramesOut()
	}
	return n
}

// cmDelayRun builds a CM ring on the simulator and measures one sender's
// ordering delay plus per-message interrupt and frame costs.
func cmDelayRun(model netsim.CostModel, members, rounds int) (time.Duration, float64, float64, error) {
	engine := sim.NewEngine(1)
	net := netsim.New(engine, model)
	clock := sim.NewEngineClock(engine)
	group := flip.AddressForName("cm-bench")

	stations := make([]*netsim.Station, members)
	stacks := make([]*flip.Stack, members)
	addrs := make([]flip.Address, members)
	for i := 0; i < members; i++ {
		stations[i] = net.AttachStation(fmt.Sprintf("cm-%d", i))
		stacks[i] = flip.NewStack(flip.Config{Station: stations[i], Clock: clock, Meter: stations[i]})
		addrs[i] = stacks[i].AllocAddress()
	}
	eps := make([]*cm.Endpoint, members)
	for i := 0; i < members; i++ {
		ep, err := cm.New(cm.Config{
			Group: group, Self: addrs[i], Members: addrs, Stack: stacks[i],
			Clock: clock, Meter: stations[i],
			RetryInterval: 50 * time.Millisecond,
		})
		if err != nil {
			return 0, 0, 0, err
		}
		eps[i] = ep
	}
	// Let locates settle.
	engine.RunUntil(engine.Now() + 50*time.Millisecond)

	sender := 1
	st := stations[sender]
	intBefore := totalInterrupts(stations)
	framesBefore := totalFrames(stations)
	var total, started time.Duration
	done := 0
	var sendNext func()
	sendNext = func() {
		started = st.Now()
		eps[sender].Send(nil, func(err error) {
			if err != nil {
				panic(fmt.Sprintf("cm send failed: %v", err))
			}
			total += st.Now() - started
			done++
			if done < rounds {
				sendNext()
			}
		})
	}
	engine.After(0, sendNext)
	engine.RunWhile(func() bool { return done < rounds })

	ints := float64(totalInterrupts(stations)-intBefore) / float64(rounds)
	frames := float64(totalFrames(stations)-framesBefore) / float64(rounds)
	return total / time.Duration(rounds), ints, frames, nil
}

// UserSpaceAblation reproduces the §5 discussion: Oey et al. measured a 32%
// communication-performance penalty for running the protocols in user space
// instead of the kernel. Scaling the protocol-layer costs by 1.32 models
// that move; the delay penalty on a null send is well under 32% because wire
// time, interrupts, and copies are unchanged — matching the paper's point
// that for most applications the difference was small.
func UserSpaceAblation(model netsim.CostModel) (*Table, error) {
	kernel, err := NewSimGroup(GroupParams{Members: 2, Method: core.MethodPB, Model: model, Seed: 1})
	if err != nil {
		return nil, err
	}
	kernelDelay := kernel.MeasureDelay(1, 0, DelayRounds)

	userModel := model
	userModel.ProtocolFactor = 1.32
	userModel.UserSpaceCrossing = 80 * time.Microsecond
	user, err := NewSimGroup(GroupParams{Members: 2, Method: core.MethodPB, Model: userModel, Seed: 1})
	if err != nil {
		return nil, err
	}
	userDelay := user.MeasureDelay(1, 0, DelayRounds)

	kernelTp, err := NewSimGroup(GroupParams{Members: 4, Method: core.MethodPB, Model: model, Seed: 1})
	if err != nil {
		return nil, err
	}
	ktp := kernelTp.MeasureThroughput(0, ThroughputWindow)
	userTp, err := NewSimGroup(GroupParams{Members: 4, Method: core.MethodPB, Model: userModel, Seed: 1})
	if err != nil {
		return nil, err
	}
	utp := userTp.MeasureThroughput(0, ThroughputWindow)

	t := &Table{
		ID:        "§5 user-space ablation",
		Title:     "in-kernel vs user-space protocol implementation (+32% protocol processing)",
		PaperNote: "Oey et al.: 32% decrease on synthetic benchmarks, small for most applications",
		Columns:   []string{"metric", "kernel", "user space", "penalty"},
	}
	t.Rows = [][]string{
		{"0 B delay (ms)",
			ms(float64(kernelDelay) / float64(time.Millisecond)),
			ms(float64(userDelay) / float64(time.Millisecond)),
			fmt.Sprintf("%.0f%%", 100*(float64(userDelay)/float64(kernelDelay)-1))},
		{"0 B throughput (msg/s, 4 members)",
			msgsPerS(ktp), msgsPerS(utp),
			fmt.Sprintf("%.0f%%", 100*(1-utp/ktp))},
	}
	return t, nil
}
