package experiments

import (
	"fmt"
	"strings"
)

// Table is one experiment's output: a titled grid whose rows mirror a data
// series in the paper.
type Table struct {
	// ID names the paper artefact, e.g. "Figure 1".
	ID string
	// Title describes the experiment.
	Title string
	// PaperNote states what the paper reports, for side-by-side reading.
	PaperNote string
	// Columns are the header cells.
	Columns []string
	// Rows are the data cells, already formatted.
	Rows [][]string
}

// String renders the table for terminal output.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	if t.PaperNote != "" {
		fmt.Fprintf(&b, "paper: %s\n", t.PaperNote)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// cell formats helpers shared by the experiments.
func ms(d float64) string       { return fmt.Sprintf("%.2f", d) }
func msgsPerS(v float64) string { return fmt.Sprintf("%.0f", v) }
