package experiments

import (
	"fmt"
	"time"

	"amoeba/internal/core"
	"amoeba/internal/netsim"
)

// DelayRounds is how many sends each delay measurement averages. The
// simulator is deterministic, so far fewer repetitions than the paper's
// 10,000 converge to stable values.
const DelayRounds = 100

// MemberCounts is the group-size sweep of Figures 1 and 3.
var MemberCounts = []int{2, 5, 10, 15, 20, 25, 30}

// Fig1 reproduces Figure 1: delay for one sender using the PB method
// (resilience 0), across message sizes and group sizes. The paper reports
// 2.7 ms for a 0-byte message to a group of 2, rising ≈4 µs per member, and
// roughly +20 ms for 8000-byte messages (the payload crosses the wire
// twice).
func Fig1(model netsim.CostModel) (*Table, error) {
	return delaySweep("Figure 1", core.MethodPB, model,
		"0-byte delay 2.7 ms @2 members → 2.8 ms @30 (≈4 µs/member); 8000 B adds ≈20 ms")
}

// Fig3 reproduces Figure 3: the same sweep with the BB method. 0-byte delay
// matches PB; large messages are dramatically cheaper because the payload
// crosses the wire once.
func Fig3(model netsim.CostModel) (*Table, error) {
	return delaySweep("Figure 3", core.MethodBB, model,
		"0-byte similar to PB; large messages ≈2× better (payload crosses the wire once)")
}

func delaySweep(id string, method core.Method, model netsim.CostModel, note string) (*Table, error) {
	t := &Table{
		ID:        id,
		Title:     fmt.Sprintf("delay for 1 sender, %v method, r=0", method),
		PaperNote: note,
		Columns:   []string{"members"},
	}
	for _, s := range Sizes {
		t.Columns = append(t.Columns, fmt.Sprintf("%dB (ms)", s))
	}
	for _, members := range MemberCounts {
		row := []string{fmt.Sprintf("%d", members)}
		for _, size := range Sizes {
			g, err := NewSimGroup(GroupParams{
				Members: members, Method: method, Model: model, Seed: 1,
			})
			if err != nil {
				return nil, err
			}
			d := g.MeasureDelay(1, size, DelayRounds)
			row = append(row, ms(float64(d)/float64(time.Millisecond)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig7 reproduces Figure 7: delay with resilience degree r, group size r+1,
// one sender. The paper reports 4.2 ms at r=1 and 12.9 ms at r=15 — about
// 600 µs per acknowledgement, since the sequencer processes the r acks
// serially.
func Fig7(model netsim.CostModel) (*Table, error) {
	t := &Table{
		ID:        "Figure 7",
		Title:     "delay for 1 sender with resilience r (group size r+1, PB)",
		PaperNote: "4.2 ms @ r=1; 12.9 ms @ r=15; ≈600 µs per acknowledgement",
		Columns:   []string{"r", "members", "0B (ms)", "1024B (ms)"},
	}
	for _, r := range []int{1, 3, 5, 7, 9, 11, 13, 15} {
		g, err := NewSimGroup(GroupParams{
			Members: r + 1, Resilience: r, Model: model, Seed: 1,
		})
		if err != nil {
			return nil, err
		}
		d0 := g.MeasureDelay(1, 0, DelayRounds)
		g2, err := NewSimGroup(GroupParams{
			Members: r + 1, Resilience: r, Model: model, Seed: 1,
		})
		if err != nil {
			return nil, err
		}
		d1 := g2.MeasureDelay(1, 1024, DelayRounds)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r), fmt.Sprintf("%d", r+1),
			ms(float64(d0) / float64(time.Millisecond)),
			ms(float64(d1) / float64(time.Millisecond)),
		})
	}
	return t, nil
}

// Table3 reproduces Table 3 / Figure 2: the per-layer breakdown of the
// critical path of one 0-byte SendToGroup to a group of 2 under PB. The
// per-layer numbers are the calibrated cost-model constants; the total is
// measured end-to-end in the simulator. The paper's total is 2740 µs, with
// ≈740 µs in the group protocol layer.
func Table3(model netsim.CostModel) (*Table, error) {
	g, err := NewSimGroup(GroupParams{Members: 2, Method: core.MethodPB, Model: model, Seed: 1})
	if err != nil {
		return nil, err
	}
	measured := g.MeasureDelay(1, 0, DelayRounds)

	us := func(d time.Duration) string { return fmt.Sprintf("%d", d.Microseconds()) }
	wire := model.FrameTime(core.GroupHeaderSize) // 0-byte payload + group header on the wire
	t := &Table{
		ID:        "Table 3",
		Title:     "critical path of a 0-byte SendToGroup, group of 2, PB",
		PaperNote: "total 2740 µs on 20-MHz MC68030s; group layer ≈740 µs",
		Columns:   []string{"machine", "layer", "µs"},
	}
	t.Rows = [][]string{
		{"sender", "user (call + context switch)", us(model.UserSend)},
		{"sender", "group (build request)", us(model.GroupOut)},
		{"sender", "FLIP out", us(model.FLIPOut)},
		{"sender", "Ethernet driver + send copy", us(model.SendDriver)},
		{"wire", "request frame", us(wire)},
		{"sequencer", "Ethernet interrupt + driver", us(model.RecvInterrupt + model.RecvDriver)},
		{"sequencer", "FLIP in", us(model.FLIPIn)},
		{"sequencer", "group (order + history)", us(model.GroupIn)},
		{"sequencer", "group (build broadcast)", us(model.GroupOut)},
		{"sequencer", "FLIP out", us(model.FLIPOut)},
		{"sequencer", "Ethernet driver + send copy", us(model.SendDriver)},
		{"wire", "broadcast frame", us(wire)},
		{"sender", "Ethernet interrupt + driver", us(model.RecvInterrupt + model.RecvDriver)},
		{"sender", "FLIP in", us(model.FLIPIn)},
		{"sender", "group (sequence + deliver)", us(model.GroupIn)},
		{"sender", "user (unblock + context switch)", us(model.UserDeliver)},
		{"", "measured end-to-end", us(measured)},
	}
	return t, nil
}

// GroupLayerTotal sums the group-layer constants on the Table 3 path,
// matching the paper's "cost for the group protocol itself is 740 µs".
func GroupLayerTotal(model netsim.CostModel) time.Duration {
	return model.GroupOut + model.GroupIn + model.GroupOut + model.GroupIn
}
