package experiments

import (
	"fmt"
	"time"

	"amoeba/internal/core"
	"amoeba/internal/netsim"
)

// ThroughputWindow is the virtual measurement duration per configuration
// (after a 20% warmup).
const ThroughputWindow = 3 * time.Second

// SenderCounts is the sweep of Figures 4 and 5 (group size = senders).
var SenderCounts = []int{1, 2, 4, 6, 8, 10, 12, 14, 16}

// ThroughputSizes trims the size sweep for throughput runs (the paper plots
// 0 B–4 KB; at 4 KB and 16 senders the sequencer's 32-frame Lance ring
// overflows and throughput collapses into retransmission timeouts).
var ThroughputSizes = []int{0, 1024, 2048, 4096}

// Fig4 reproduces Figure 4: throughput with every member sending, PB method.
// The paper measures a maximum of 815 0-byte messages/s — bounded by the
// sequencer's ≈800 µs per-message processing plus scheduling its co-located
// member — decreasing with message size (copies), and collapsing for 4 KB
// messages once the receive ring overflows.
func Fig4(model netsim.CostModel) (*Table, error) {
	return throughputSweep("Figure 4", core.MethodPB, model,
		"max 815 msg/s at 0 B (sequencer-bound); 4 KB collapses when the 32-frame ring overflows")
}

// Fig5 reproduces Figure 5: the same sweep with the BB method. Large
// messages fare better than PB because the payload crosses the wire once.
func Fig5(model netsim.CostModel) (*Table, error) {
	return throughputSweep("Figure 5", core.MethodBB, model,
		"0 B similar to PB; large messages sustain higher rates (half the wire traffic)")
}

func throughputSweep(id string, method core.Method, model netsim.CostModel, note string) (*Table, error) {
	t := &Table{
		ID:        id,
		Title:     fmt.Sprintf("throughput, all members sending, %v method, r=0", method),
		PaperNote: note,
		Columns:   []string{"senders"},
	}
	for _, s := range ThroughputSizes {
		t.Columns = append(t.Columns, fmt.Sprintf("%dB (msg/s)", s))
	}
	for _, senders := range SenderCounts {
		row := []string{fmt.Sprintf("%d", senders)}
		for _, size := range ThroughputSizes {
			g, err := NewSimGroup(GroupParams{
				Members: senders, Method: method, Model: model, Seed: 1,
			})
			if err != nil {
				return nil, err
			}
			row = append(row, msgsPerS(g.MeasureThroughput(size, ThroughputWindow)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig8 reproduces Figure 8: throughput with resilience degree r (group size
// = senders = r+1, PB). Each message costs the sequencer 3+r packets, so
// throughput falls as r grows.
func Fig8(model netsim.CostModel) (*Table, error) {
	t := &Table{
		ID:        "Figure 8",
		Title:     "throughput with resilience r, all members sending (group size r+1, PB)",
		PaperNote: "3+r packets per broadcast: throughput falls as r grows",
		Columns:   []string{"r", "members", "0B (msg/s)", "1024B (msg/s)"},
	}
	for _, r := range []int{0, 1, 3, 5, 7, 9, 11, 13, 15} {
		row := []string{fmt.Sprintf("%d", r), fmt.Sprintf("%d", r+1)}
		for _, size := range []int{0, 1024} {
			g, err := NewSimGroup(GroupParams{
				Members: r + 1, Resilience: r, Model: model, Seed: 1,
			})
			if err != nil {
				return nil, err
			}
			row = append(row, msgsPerS(g.MeasureThroughput(size, ThroughputWindow)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig6 reproduces Figure 6: aggregate throughput of disjoint groups sharing
// one Ethernet, all members sending 0-byte messages with PB. The paper
// peaks at 3175 msg/s with 5 groups of 2 (≈61% Ethernet utilisation) and
// declines beyond as collisions waste the wire; groups of 8 fare worst.
func Fig6(model netsim.CostModel) (*Table, error) {
	t := &Table{
		ID:        "Figure 6",
		Title:     "aggregate throughput of parallel disjoint groups (0 B, PB)",
		PaperNote: "peak 3175 msg/s at 5×2 (≈61% utilisation), then collision-driven decline; size 8 poor",
		Columns:   []string{"groups", "2-member (msg/s)", "4-member (msg/s)", "8-member (msg/s)", "util(2)"},
	}
	for _, groups := range []int{1, 2, 3, 4, 5, 6, 7} {
		row := []string{fmt.Sprintf("%d", groups)}
		var util2 float64
		for _, size := range []int{2, 4, 8} {
			total, util, err := parallelGroups(model, groups, size)
			if err != nil {
				return nil, err
			}
			row = append(row, msgsPerS(total))
			if size == 2 {
				util2 = util
			}
		}
		row = append(row, fmt.Sprintf("%.0f%%", util2*100))
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// ParallelGroupsPoint returns the aggregate throughput of one Figure 6
// configuration, for benchmarks that pin a single point of the sweep.
func ParallelGroupsPoint(model netsim.CostModel, groups, size int) (float64, error) {
	total, _, err := parallelGroups(model, groups, size)
	return total, err
}

// parallelGroups runs `groups` disjoint groups of `size` members on one
// simulated Ethernet, everyone sending 0-byte messages, and returns the
// aggregate ordered-message rate and the wire utilisation.
func parallelGroups(model netsim.CostModel, groups, size int) (float64, float64, error) {
	first, err := NewSimGroup(GroupParams{
		Members: size, Model: model, Seed: 1, GroupName: "pg-0",
	})
	if err != nil {
		return 0, 0, err
	}
	sims := []*SimGroup{first}
	for i := 1; i < groups; i++ {
		g, err := NewSimGroup(GroupParams{
			Members: size, Model: model, Seed: 1,
			Share: first.Net, GroupName: fmt.Sprintf("pg-%d", i),
		})
		if err != nil {
			return 0, 0, err
		}
		sims = append(sims, g)
	}
	for _, g := range sims {
		g.StartSenders(0)
	}
	eng := first.Engine
	warmup := ThroughputWindow / 5
	eng.RunUntil(eng.Now() + warmup)
	starts := make([]uint64, groups)
	for i, g := range sims {
		starts[i] = g.Delivered(0)
	}
	startTime := eng.Now()
	eng.RunUntil(startTime + ThroughputWindow)
	elapsed := eng.Now() - startTime

	var total float64
	for i, g := range sims {
		total += float64(g.Delivered(0)-starts[i]) / elapsed.Seconds()
	}
	return total, first.Net.Utilization(), nil
}
