package experiments

import (
	"encoding/json"
	"fmt"

	"amoeba/internal/core"
	"amoeba/internal/netsim"
)

// BatchDepths is the pipelining-depth sweep of the batched-ordering
// experiment (and of BENCH_batched.json).
var BatchDepths = []int{1, 4, 16}

// BatchedResult is one depth point of the batched-ordering experiment, in
// machine-readable form for the perf-trajectory file.
type BatchedResult struct {
	Depth      int     `json:"depth"`
	MsgsPerSec float64 `json:"msgs_per_sec"`
	Speedup    float64 `json:"speedup_vs_depth1"`
	AvgBatch   float64 `json:"avg_batch_msgs"`
	MaxBatch   uint64  `json:"max_batch_msgs"`
}

// BatchedPoint measures single-group ordered throughput at one pipelining
// depth: a 6-member group on the modelled hardware, the five non-sequencer
// members each keep `depth` sends outstanding (0-byte payloads, PB,
// r=0). Depth 1 pins SendWindow and MaxBatch to 1 — the seed's unbatched
// one-request-at-a-time path — so the sweep's speedups are measured against
// the pre-batching protocol, not merely against an idle pipeline.
func BatchedPoint(model netsim.CostModel, depth int) (BatchedResult, error) {
	p := GroupParams{Members: 6, Method: core.MethodPB, Model: model, Seed: 1}
	if depth <= 1 {
		p.SendWindow, p.MaxBatch = 1, 1
	} else {
		// A small window keeps requests flowing while queued sends
		// coalesce up to the depth; the batch size then self-tunes to
		// the sequencer round-trip, exactly like group commit.
		p.SendWindow, p.MaxBatch = 2, depth
	}
	g, err := NewSimGroup(p)
	if err != nil {
		return BatchedResult{}, err
	}
	var senders []int
	for i := 1; i < p.Members; i++ {
		senders = append(senders, i)
	}
	g.StartPipelinedSenders(0, depth, senders...)
	warmup := ThroughputWindow / 5
	g.Engine.RunUntil(g.Engine.Now() + warmup)
	startCount := g.Delivered(0)
	startTime := g.Engine.Now()
	g.Engine.RunUntil(startTime + ThroughputWindow)
	elapsed := g.Engine.Now() - startTime

	res := BatchedResult{
		Depth:      depth,
		MsgsPerSec: float64(g.Delivered(0)-startCount) / elapsed.Seconds(),
	}
	st := g.Eps[0].Stats()
	if st.OrderedBatches > 0 {
		res.AvgBatch = float64(st.BatchedMsgs) / float64(st.OrderedBatches)
	}
	res.MaxBatch = st.MaxBatchMsgs
	return res, nil
}

// BatchedResults runs the full depth sweep.
func BatchedResults(model netsim.CostModel) ([]BatchedResult, error) {
	results := make([]BatchedResult, 0, len(BatchDepths))
	var base float64
	for _, depth := range BatchDepths {
		r, err := BatchedPoint(model, depth)
		if err != nil {
			return nil, err
		}
		if base == 0 {
			base = r.MsgsPerSec
		}
		if base > 0 {
			r.Speedup = r.MsgsPerSec / base
		}
		results = append(results, r)
	}
	return results, nil
}

// BatchedTable renders a depth sweep as an experiment table.
func BatchedTable(results []BatchedResult) *Table {
	t := &Table{
		ID:        "Batched ordering",
		Title:     "single-group ordered throughput vs pipelining depth (6 members, 5 senders, 0 B, PB, r=0)",
		PaperNote: "conclusion 1: throughput is processing-bound at the sequencer; amortising per-request work across a batch multiplies it",
		Columns:   []string{"depth", "msgs/s", "speedup", "avg batch", "max batch"},
	}
	for _, r := range results {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.Depth),
			msgsPerS(r.MsgsPerSec),
			fmt.Sprintf("%.2fx", r.Speedup),
			fmt.Sprintf("%.1f", r.AvgBatch),
			fmt.Sprintf("%d", r.MaxBatch),
		})
	}
	return t
}

// Batched reproduces the batching claim of the paper's conclusion 1 as a
// table: sequencer-based ordering is processing-bound, so coalescing
// requests multiplies per-group throughput without touching the protocol's
// guarantees.
func Batched(model netsim.CostModel) (*Table, error) {
	results, err := BatchedResults(model)
	if err != nil {
		return nil, err
	}
	return BatchedTable(results), nil
}

// BatchedJSON renders a depth sweep for BENCH_batched.json.
func BatchedJSON(results []BatchedResult) ([]byte, error) {
	out := struct {
		Experiment string          `json:"experiment"`
		Unit       string          `json:"unit"`
		Results    []BatchedResult `json:"results"`
	}{
		Experiment: "batched",
		Unit:       "ordered msgs/sec, single 6-member group, modelled 10 Mbit/s Ethernet + MC68030",
		Results:    results,
	}
	return json.MarshalIndent(out, "", "  ")
}
