package experiments

import (
	"testing"
	"time"

	"amoeba/internal/core"
	"amoeba/internal/netsim"
)

// These tests pin the cost model to the paper's headline measurements. They
// are the contract behind every figure: if a refactor shifts a number past
// tolerance, a figure's shape has probably shifted too.

// within asserts got ∈ [want·(1−tol), want·(1+tol)].
func within(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	lo, hi := want*(1-tol), want*(1+tol)
	if got < lo || got > hi {
		t.Errorf("%s = %.3g, want %.3g ± %.0f%%", name, got, want, tol*100)
	} else {
		t.Logf("%s = %.4g (paper %.4g)", name, got, want)
	}
}

func delayMs(t *testing.T, members, size, r int, method core.Method) float64 {
	t.Helper()
	g, err := NewSimGroup(GroupParams{
		Members: members, Resilience: r, Method: method,
		Model: netsim.DefaultCostModel(), Seed: 1,
	})
	if err != nil {
		t.Fatalf("NewSimGroup: %v", err)
	}
	d := g.MeasureDelay(1, size, DelayRounds)
	return float64(d) / float64(time.Millisecond)
}

func TestCalibrationNullDelay(t *testing.T) {
	// Paper: 2.7 ms for a 0-byte PB send to a group of 2.
	within(t, "PB 0B delay, 2 members (ms)", delayMs(t, 2, 0, 0, core.MethodPB), 2.7, 0.1)
}

func TestCalibrationDelayGrowsSlowlyWithMembers(t *testing.T) {
	// Paper: 2.8 ms at 30 members — roughly 4 µs per added member.
	d2 := delayMs(t, 2, 0, 0, core.MethodPB)
	d30 := delayMs(t, 30, 0, 0, core.MethodPB)
	within(t, "PB 0B delay, 30 members (ms)", d30, 2.8, 0.1)
	perMember := (d30 - d2) * 1000 / 28 // µs
	within(t, "delay added per member (µs)", perMember, 4, 0.5)
}

func TestCalibrationLargeMessagePB(t *testing.T) {
	// Paper: an 8000-byte message adds roughly 20 ms under PB (the
	// payload crosses the wire twice, plus copies).
	d0 := delayMs(t, 2, 0, 0, core.MethodPB)
	d8k := delayMs(t, 2, 8000, 0, core.MethodPB)
	within(t, "PB 8000B delta (ms)", d8k-d0, 20, 0.25)
}

func TestCalibrationBBBeatsPBForLargeMessages(t *testing.T) {
	// Paper (Fig 3): for large messages BB is dramatically better; for
	// 0-byte messages the methods are equivalent.
	pb := delayMs(t, 10, 8000, 0, core.MethodPB)
	bb := delayMs(t, 10, 8000, 0, core.MethodBB)
	if bb >= pb*0.75 {
		t.Errorf("BB (%.2f ms) not clearly better than PB (%.2f ms) at 8000 B", bb, pb)
	}
	pb0 := delayMs(t, 10, 0, 0, core.MethodPB)
	bb0 := delayMs(t, 10, 0, 0, core.MethodBB)
	within(t, "BB/PB 0-byte ratio", bb0/pb0, 1.0, 0.1)
}

func TestCalibrationThroughput(t *testing.T) {
	// Paper: maximum 815 messages/s, bounded by the sequencer.
	g, err := NewSimGroup(GroupParams{Members: 4, Method: core.MethodPB, Model: netsim.DefaultCostModel(), Seed: 1})
	if err != nil {
		t.Fatalf("NewSimGroup: %v", err)
	}
	tp := g.MeasureThroughput(0, 2*time.Second)
	within(t, "0B PB throughput (msg/s)", tp, 815, 0.15)
}

func TestCalibrationResilienceDelay(t *testing.T) {
	// Paper: 4.2 ms at r=1 (group of 2); 12.9 ms at r=15 (group of 16);
	// each acknowledgement adds ≈600 µs of serial sequencer processing.
	d1 := delayMs(t, 2, 0, 1, core.MethodPB)
	d15 := delayMs(t, 16, 0, 15, core.MethodPB)
	within(t, "r=1 delay (ms)", d1, 4.2, 0.2)
	within(t, "r=15 delay (ms)", d15, 12.9, 0.15)
	perAck := (d15 - d1) * 1000 / 14
	within(t, "per-ack cost (µs)", perAck, 600, 0.25)
}

func TestCalibrationGroupLayerBudget(t *testing.T) {
	// Paper (Table 3): the group protocol contributes ≈740 µs of the
	// 2740 µs critical path.
	total := GroupLayerTotal(netsim.DefaultCostModel())
	within(t, "group-layer path total (µs)", float64(total.Microseconds()), 740, 0.1)
}

func TestCalibrationParallelGroupsPeak(t *testing.T) {
	// Paper (Fig 6): five 2-member groups aggregate ≈3175 msg/s; adding
	// groups beyond the knee does not scale linearly (Ethernet becomes
	// the bottleneck).
	model := netsim.DefaultCostModel()
	one, _, err := parallelGroups(model, 1, 2)
	if err != nil {
		t.Fatalf("parallelGroups: %v", err)
	}
	five, util, err := parallelGroups(model, 5, 2)
	if err != nil {
		t.Fatalf("parallelGroups: %v", err)
	}
	seven, _, err := parallelGroups(model, 7, 2)
	if err != nil {
		t.Fatalf("parallelGroups: %v", err)
	}
	t.Logf("aggregate: 1 group %.0f, 5 groups %.0f (util %.0f%%), 7 groups %.0f",
		one, five, util*100, seven)
	within(t, "5-group aggregate (msg/s)", five, 3175, 0.25)
	if five < 3*one {
		t.Errorf("5 groups (%.0f) should scale well past one group (%.0f)", five, one)
	}
	if seven > five*1.25 {
		t.Errorf("7 groups (%.0f) should not scale linearly past the knee (5 groups: %.0f)", seven, five)
	}
}

func TestCalibrationRingOverflowCollapse(t *testing.T) {
	// Paper (Fig 4): with 4 KB messages and many senders the sequencer's
	// 32-frame ring overflows and throughput collapses into retransmit
	// timeouts: well below the rate that message size sustains with few
	// senders.
	model := netsim.DefaultCostModel()
	few, err := NewSimGroup(GroupParams{Members: 2, Method: core.MethodPB, Model: model, Seed: 1})
	if err != nil {
		t.Fatalf("NewSimGroup: %v", err)
	}
	tpFew := few.MeasureThroughput(4096, 2*time.Second)
	many, err := NewSimGroup(GroupParams{Members: 16, Method: core.MethodPB, Model: model, Seed: 1})
	if err != nil {
		t.Fatalf("NewSimGroup: %v", err)
	}
	tpMany := many.MeasureThroughput(4096, 2*time.Second)
	t.Logf("4KB throughput: 2 senders %.0f msg/s, 16 senders %.0f msg/s", tpFew, tpMany)
	if tpMany > tpFew*0.8 {
		t.Errorf("no overload collapse: 16 senders %.0f vs 2 senders %.0f", tpMany, tpFew)
	}
	drops := many.Stations[0].RingDrops()
	if drops == 0 {
		t.Error("collapse without ring drops: wrong mechanism")
	}
}
