package experiments

import (
	"testing"
	"time"

	"amoeba/internal/core"
	"amoeba/internal/netsim"
)

func TestSoloThroughput(t *testing.T) {
	g, err := NewSimGroup(GroupParams{Members: 1, Method: core.MethodPB, Model: netsim.DefaultCostModel(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan float64, 1)
	go func() { done <- g.MeasureThroughput(0, ThroughputWindow) }()
	select {
	case tp := <-done:
		t.Logf("solo throughput: %.0f msg/s (events %d)", tp, g.Engine.Fired())
	case <-time.After(10 * time.Second):
		t.Fatalf("solo throughput hung; pending events %d fired %d now %v", g.Engine.Pending(), g.Engine.Fired(), g.Engine.Now())
	}
}
