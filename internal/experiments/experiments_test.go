package experiments

import (
	"strings"
	"testing"

	"amoeba/internal/netsim"
)

// Smoke tests for the experiment harnesses that cmd/amoeba-bench runs: each
// must produce a well-formed table with plausible content. The heavyweight
// sweeps (Fig 1–8) are covered by the calibration tests that pin their
// headline points; here we run the comparison/ablation experiments end to
// end.

func checkTable(t *testing.T, tbl *Table, err error, wantRows int) {
	t.Helper()
	if err != nil {
		t.Fatalf("experiment failed: %v", err)
	}
	if len(tbl.Rows) < wantRows {
		t.Fatalf("%s produced %d rows, want ≥ %d", tbl.ID, len(tbl.Rows), wantRows)
	}
	out := tbl.String()
	if !strings.Contains(out, tbl.ID) || !strings.Contains(out, "paper:") {
		t.Fatalf("table rendering missing header: %q", out)
	}
	for _, row := range tbl.Rows {
		if len(row) != len(tbl.Columns) && len(row) != len(tbl.Columns)+0 {
			t.Fatalf("%s row width %d != %d columns", tbl.ID, len(row), len(tbl.Columns))
		}
	}
}

func TestTable3Experiment(t *testing.T) {
	tbl, err := Table3(netsim.DefaultCostModel())
	checkTable(t, tbl, err, 10)
	// The measured total is the last row; it must be near the paper's
	// 2740 µs (the calibration tests assert the tight bound).
	last := tbl.Rows[len(tbl.Rows)-1]
	if !strings.Contains(last[1], "measured") {
		t.Fatalf("last row = %v", last)
	}
}

func TestRPCComparisonExperiment(t *testing.T) {
	tbl, err := RPCComparison(netsim.DefaultCostModel())
	checkTable(t, tbl, err, 3)
	// Group send must beat RPC (the paper's direction).
	group, rpc := tbl.Rows[0][1], tbl.Rows[1][1]
	if group >= rpc {
		t.Fatalf("group send (%s ms) not faster than RPC (%s ms)", group, rpc)
	}
}

func TestCMComparisonExperiment(t *testing.T) {
	tbl, err := CMComparison(netsim.DefaultCostModel())
	checkTable(t, tbl, err, 2)
	// Amoeba interrupts ≈ n = 8; CM ≈ 2(n−1) = 14.
	if tbl.Rows[0][2] != "8.0" {
		t.Fatalf("Amoeba interrupts/msg = %s, want 8.0", tbl.Rows[0][2])
	}
	cmInts := tbl.Rows[1][2]
	if cmInts < "12" || cmInts > "15" { // lexical compare is fine for #.# here
		t.Fatalf("CM interrupts/msg = %s, want ≈14", cmInts)
	}
}

func TestUserSpaceAblationExperiment(t *testing.T) {
	tbl, err := UserSpaceAblation(netsim.DefaultCostModel())
	checkTable(t, tbl, err, 2)
}

func TestSequencerPlacementExperiment(t *testing.T) {
	tbl, err := SequencerPlacement(netsim.DefaultCostModel())
	checkTable(t, tbl, err, 2)
	// Co-located sends use exactly one wire frame.
	if tbl.Rows[1][2] != "1.0" {
		t.Fatalf("co-located frames/msg = %s, want 1.0", tbl.Rows[1][2])
	}
	if tbl.Rows[0][2] != "2.0" {
		t.Fatalf("remote frames/msg = %s, want 2.0", tbl.Rows[0][2])
	}
}

func TestProcessingScalingExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-window throughput runs")
	}
	tbl, err := ProcessingScaling(netsim.DefaultCostModel())
	checkTable(t, tbl, err, 4)
	if tbl.Rows[0][2] != "1.00x" {
		t.Fatalf("baseline speedup = %s", tbl.Rows[0][2])
	}
}

func TestFig7Experiment(t *testing.T) {
	if testing.Short() {
		t.Skip("full resilience sweep")
	}
	tbl, err := Fig7(netsim.DefaultCostModel())
	checkTable(t, tbl, err, 8)
}
