// Package experiments reproduces every table and figure in the paper's
// evaluation (§4) on the calibrated discrete-event simulator: the same
// protocol code that runs on real transports executes over a model of the
// paper's 10 Mbit/s Ethernet, Lance interfaces, and 20-MHz MC68030
// processing costs. Absolute numbers are calibration, but the shapes — who
// wins, where throughput collapses, what each member or acknowledgement
// adds — emerge from the same mechanisms the paper identifies.
//
// Each experiment function returns a Table whose rows mirror the data series
// in the corresponding paper figure; cmd/amoeba-bench prints them and
// bench_test.go wraps them as Go benchmarks.
package experiments

import (
	"fmt"
	"time"

	"amoeba/internal/core"
	"amoeba/internal/flip"
	"amoeba/internal/netsim"
	"amoeba/internal/sim"
)

// Sizes are the paper's message sizes (§4): 0 bytes, 1 KB, 2 KB, 4 KB, and
// 8000 bytes (the implementation limit the paper measured up to).
var Sizes = []int{0, 1024, 2048, 4096, 8000}

// SimGroup is one group running under the simulator.
type SimGroup struct {
	Engine   *sim.Engine
	Net      *netsim.Network
	Stations []*netsim.Station
	Stacks   []*flip.Stack
	Eps      []*core.Endpoint

	delivered []uint64 // per member, data messages only
}

// GroupParams configures a simulated group.
type GroupParams struct {
	Members    int
	Resilience int
	Method     core.Method
	Model      netsim.CostModel
	Seed       int64
	// SendWindow and MaxBatch configure per-sender pipelining and request
	// coalescing; zero takes the core defaults. SendWindow 1 + MaxBatch 1
	// reproduces the unbatched seed behaviour exactly.
	SendWindow int
	MaxBatch   int
	// Share places the group on an existing network (for multi-group
	// experiments); nil builds a fresh one.
	Share *netsim.Network
	// GroupName must differ between groups sharing a network.
	GroupName string
}

// NewSimGroup builds and fully forms a simulated group: member 0 creates,
// the rest join one at a time (in virtual time). The returned group is
// quiescent and ready for measurement.
func NewSimGroup(p GroupParams) (*SimGroup, error) {
	if p.Members < 1 {
		return nil, fmt.Errorf("experiments: group needs at least 1 member, got %d", p.Members)
	}
	if p.GroupName == "" {
		p.GroupName = "bench"
	}
	g := &SimGroup{}
	if p.Share != nil {
		g.Net = p.Share
		g.Engine = p.Share.Engine()
	} else {
		g.Engine = sim.NewEngine(p.Seed)
		g.Net = netsim.New(g.Engine, p.Model)
	}
	clock := sim.NewEngineClock(g.Engine)
	groupAddr := flip.AddressForName(p.GroupName)
	g.delivered = make([]uint64, p.Members)

	for i := 0; i < p.Members; i++ {
		st := g.Net.AttachStation(fmt.Sprintf("%s-%d", p.GroupName, i))
		stack := flip.NewStack(flip.Config{Station: st, Clock: clock, Meter: st})
		g.Stations = append(g.Stations, st)
		g.Stacks = append(g.Stacks, stack)

		idx := i
		cfg := core.Config{
			Group:      groupAddr,
			Self:       stack.AllocAddress(),
			Clock:      clock,
			Meter:      st,
			Resilience: p.Resilience,
			Method:     p.Method,
			SendWindow: p.SendWindow,
			MaxBatch:   p.MaxBatch,
			OnDeliver: func(d core.Delivery) {
				if d.Kind == core.KindData {
					g.delivered[idx]++
				}
			},
			// Experiment-scale timeouts: the paper's network loses
			// packets only under overload, where timeout-driven
			// retransmission is exactly the collapse mechanism it
			// reports.
			RetryInterval: 50 * time.Millisecond,
			NakDelay:      2 * time.Millisecond,
			SyncInterval:  250 * time.Millisecond,
			MaxRetries:    1000, // experiments never abandon a send
		}
		tr := core.NewFLIPTransport(stack, cfg.Self, groupAddr)
		cfg.Transport = tr

		var (
			ep  *core.Endpoint
			err error
		)
		joined := false
		if i == 0 {
			ep, err = core.NewCreator(cfg)
		} else {
			ep, err = core.NewJoiner(cfg, func(e error) {
				if e != nil {
					err = e
				}
				joined = true
			})
		}
		if err != nil {
			return nil, fmt.Errorf("experiments: member %d: %w", i, err)
		}
		g.Eps = append(g.Eps, ep)
		tr.Bind(ep)
		ep.Start()
		if i > 0 {
			g.Engine.RunWhile(func() bool { return !joined })
			if err != nil {
				return nil, fmt.Errorf("experiments: member %d join: %w", i, err)
			}
		}
	}
	// Let formation traffic quiesce.
	g.Engine.RunUntil(g.Engine.Now() + 100*time.Millisecond)
	return g, nil
}

// Delivered reports data messages delivered at member i.
func (g *SimGroup) Delivered(i int) uint64 { return g.delivered[i] }

// MeasureDelay has member `sender` send `rounds` messages of `size` bytes,
// one after another (each send starts when the previous completes), and
// returns the mean completion delay in virtual time. This is the paper's
// delay experiment: one continuous sender, everyone receiving.
func (g *SimGroup) MeasureDelay(sender, size, rounds int) time.Duration {
	payload := make([]byte, size)
	st := g.Stations[sender]
	var (
		total   time.Duration
		started time.Duration
		done    int
	)
	var sendNext func()
	sendNext = func() {
		started = st.Now()
		g.Eps[sender].Send(payload, func(err error) {
			if err != nil {
				panic(fmt.Sprintf("experiments: send failed: %v", err))
			}
			total += st.Now() - started
			done++
			if done < rounds {
				// Next send once the sender's CPU is free; see
				// StartSenders.
				g.Engine.At(st.Now(), sendNext)
			}
		})
	}
	g.Engine.After(0, sendNext)
	g.Engine.RunWhile(func() bool { return done < rounds })
	return total / time.Duration(rounds)
}

// MeasureThroughput has every member send `size`-byte messages continuously
// for the virtual duration d (after a warmup of d/5) and returns ordered
// messages per second, measured as data deliveries at member 0.
func (g *SimGroup) MeasureThroughput(size int, d time.Duration) float64 {
	g.StartSenders(size)
	warmup := d / 5
	g.Engine.RunUntil(g.Engine.Now() + warmup)
	startCount := g.Delivered(0)
	startTime := g.Engine.Now()
	g.Engine.RunUntil(startTime + d)
	elapsed := g.Engine.Now() - startTime
	return float64(g.Delivered(0)-startCount) / elapsed.Seconds()
}

// StartSenders makes every member send continuously: each completed send
// issues the next as soon as the member's CPU is free. (Scheduling at the
// station's virtual clock rather than recursing matters for the sequencer,
// whose own sends complete synchronously — the sending thread still occupies
// the CPU, so back-to-back sends advance virtual time.)
func (g *SimGroup) StartSenders(size int) {
	for i := range g.Eps {
		g.startSenderLoops(i, size, 1)
	}
}

// StartPipelinedSenders runs `depth` concurrent send loops at each of the
// given members — the model of a multithreaded client keeping depth
// operations outstanding. With depth above the member's SendWindow, queued
// sends coalesce into batch requests.
func (g *SimGroup) StartPipelinedSenders(size, depth int, members ...int) {
	for _, i := range members {
		g.startSenderLoops(i, size, depth)
	}
}

func (g *SimGroup) startSenderLoops(member, size, loops int) {
	payload := make([]byte, size)
	for l := 0; l < loops; l++ {
		var loop func(error)
		loop = func(error) {
			g.Engine.At(g.Stations[member].Now(), func() {
				// Sends that fail (history backpressure surfaced
				// as an error after many retries) just try again.
				g.Eps[member].Send(payload, loop)
			})
		}
		g.Engine.After(0, func() { loop(nil) })
	}
}
