package experiments

import (
	"fmt"
	"time"

	"amoeba/internal/core"
	"amoeba/internal/netsim"
)

// SequencerPlacement quantifies the §5 observation behind migrating
// sequencers: Amoeba's users placed the busiest sender on the sequencer's
// machine, where a send needs one multicast instead of a request plus a
// broadcast. The gap between the two rows is the benefit a
// dynamically-migrating sequencer (Horus, Transis) buys for bursty senders.
func SequencerPlacement(model netsim.CostModel) (*Table, error) {
	t := &Table{
		ID:        "§5 sequencer placement",
		Title:     "sender co-located with the sequencer vs on another machine (0 B, PB)",
		PaperNote: "heavy senders were placed on the sequencer's kernel; migrating sequencers generalise this",
		Columns:   []string{"sender", "delay (ms)", "wire frames/msg"},
	}
	for _, co := range []bool{false, true} {
		g, err := NewSimGroup(GroupParams{Members: 4, Method: core.MethodPB, Model: model, Seed: 1})
		if err != nil {
			return nil, err
		}
		sender := 1
		label := "remote member"
		if co {
			sender = 0
			label = "on the sequencer"
		}
		framesBefore := totalFrames(g.Stations)
		d := g.MeasureDelay(sender, 0, DelayRounds)
		frames := float64(totalFrames(g.Stations)-framesBefore) / DelayRounds
		t.Rows = append(t.Rows, []string{
			label,
			ms(float64(d) / float64(time.Millisecond)),
			fmt.Sprintf("%.1f", frames),
		})
	}
	return t, nil
}

// ProcessingScaling supports the paper's first conclusion: "the scalability
// of our sequencer-based protocols is limited by message processing time".
// Scaling every per-message processing cost down (the effect of techniques
// like optimistic active messages, §5) moves the sequencer's throughput
// ceiling almost proportionally — the protocol itself is not the limit.
func ProcessingScaling(model netsim.CostModel) (*Table, error) {
	t := &Table{
		ID:        "§7 processing-time scaling",
		Title:     "group throughput as per-message processing cost shrinks (0 B, PB, 4 members)",
		PaperNote: "conclusion 1: throughput is bounded by processing time, not by the protocol",
		Columns:   []string{"processing cost", "throughput (msg/s)", "speedup"},
	}
	var base float64
	for _, factor := range []float64{1.0, 0.75, 0.5, 0.25} {
		m := scaleProcessing(model, factor)
		g, err := NewSimGroup(GroupParams{Members: 4, Method: core.MethodPB, Model: m, Seed: 1})
		if err != nil {
			return nil, err
		}
		tp := g.MeasureThroughput(0, ThroughputWindow)
		if factor == 1.0 {
			base = tp
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f%%", factor*100),
			msgsPerS(tp),
			fmt.Sprintf("%.2fx", tp/base),
		})
	}
	return t, nil
}

// scaleProcessing multiplies every CPU cost (protocol layers, interrupts,
// drivers, context switches) by factor, leaving the wire untouched.
func scaleProcessing(m netsim.CostModel, factor float64) netsim.CostModel {
	s := func(d time.Duration) time.Duration {
		return time.Duration(float64(d) * factor)
	}
	m.RecvInterrupt = s(m.RecvInterrupt)
	m.RecvDriver = s(m.RecvDriver)
	m.SendDriver = s(m.SendDriver)
	m.FLIPIn = s(m.FLIPIn)
	m.FLIPOut = s(m.FLIPOut)
	m.GroupIn = s(m.GroupIn)
	m.GroupOut = s(m.GroupOut)
	m.CtrlIn = s(m.CtrlIn)
	m.UserSend = s(m.UserSend)
	m.UserDeliver = s(m.UserDeliver)
	return m
}
