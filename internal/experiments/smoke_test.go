package experiments

import (
	"testing"
	"time"

	"amoeba/internal/core"
	"amoeba/internal/netsim"
)

func TestSimGroupForms(t *testing.T) {
	g, err := NewSimGroup(GroupParams{Members: 5, Model: netsim.DefaultCostModel(), Seed: 1})
	if err != nil {
		t.Fatalf("NewSimGroup: %v", err)
	}
	for i, ep := range g.Eps {
		info := ep.Info()
		if len(info.Members) != 5 {
			t.Fatalf("member %d sees %d members", i, len(info.Members))
		}
	}
}

func TestMeasureDelayBasic(t *testing.T) {
	g, err := NewSimGroup(GroupParams{Members: 2, Method: core.MethodPB, Model: netsim.DefaultCostModel(), Seed: 1})
	if err != nil {
		t.Fatalf("NewSimGroup: %v", err)
	}
	d := g.MeasureDelay(1, 0, 20)
	t.Logf("0-byte PB delay, 2 members: %v", d)
	if d <= 0 || d > 50*time.Millisecond {
		t.Fatalf("implausible delay %v", d)
	}
}

func TestMeasureThroughputBasic(t *testing.T) {
	g, err := NewSimGroup(GroupParams{Members: 4, Method: core.MethodPB, Model: netsim.DefaultCostModel(), Seed: 1})
	if err != nil {
		t.Fatalf("NewSimGroup: %v", err)
	}
	tp := g.MeasureThroughput(0, time.Second)
	t.Logf("0-byte PB throughput, 4 members: %.0f msg/s", tp)
	if tp < 50 {
		t.Fatalf("implausible throughput %.0f", tp)
	}
}
