package sim

import (
	"sync"
	"time"
)

// Timer is a cancellable pending callback, satisfied by both virtual and
// wall-clock timers.
type Timer interface {
	// Stop cancels the timer, reporting whether it was still pending.
	Stop() bool
}

// Clock abstracts time for protocol code so the same state machines run under
// the simulator (virtual time) and in real deployments (wall-clock time).
type Clock interface {
	// Now returns the time elapsed since the clock's epoch.
	Now() time.Duration
	// AfterFunc arranges for fn to run d from now and returns a handle to
	// cancel it. fn runs on the clock's dispatch context: the simulation
	// event loop for virtual clocks, a timer goroutine for real clocks.
	AfterFunc(d time.Duration, fn func()) Timer
}

// EngineClock adapts an Engine to the Clock interface.
type EngineClock struct {
	engine *Engine
}

var _ Clock = (*EngineClock)(nil)

// NewEngineClock returns a Clock driven by the engine's virtual time.
func NewEngineClock(e *Engine) *EngineClock { return &EngineClock{engine: e} }

// Now returns the engine's virtual time.
func (c *EngineClock) Now() time.Duration { return c.engine.Now() }

// AfterFunc schedules fn on the engine d from now.
func (c *EngineClock) AfterFunc(d time.Duration, fn func()) Timer {
	return c.engine.After(d, fn)
}

// RealClock is a Clock backed by the wall clock. Its epoch is the moment it
// is created.
type RealClock struct {
	epoch time.Time
}

var _ Clock = (*RealClock)(nil)

// NewRealClock returns a wall-clock Clock with epoch now.
func NewRealClock() *RealClock { return &RealClock{epoch: time.Now()} }

// Now returns the wall-clock time elapsed since the clock was created.
func (c *RealClock) Now() time.Duration { return time.Since(c.epoch) }

// AfterFunc schedules fn on a timer goroutine d from now.
func (c *RealClock) AfterFunc(d time.Duration, fn func()) Timer {
	return &realTimer{t: time.AfterFunc(d, fn)}
}

type realTimer struct {
	t *time.Timer
}

func (t *realTimer) Stop() bool { return t.t.Stop() }

// ManualClock is a Clock advanced explicitly by tests. It dispatches due
// timers synchronously from Advance, which makes timer-driven protocol paths
// (retransmission, failure detection) testable without sleeping.
type ManualClock struct {
	mu     sync.Mutex
	now    time.Duration
	seq    uint64
	timers []*manualTimer
}

var _ Clock = (*ManualClock)(nil)

// NewManualClock returns a ManualClock at time zero.
func NewManualClock() *ManualClock { return &ManualClock{} }

type manualTimer struct {
	clock   *ManualClock
	at      time.Duration
	seq     uint64
	fn      func()
	stopped bool
}

func (t *manualTimer) Stop() bool {
	t.clock.mu.Lock()
	defer t.clock.mu.Unlock()
	if t.stopped {
		return false
	}
	t.stopped = true
	return true
}

// Now returns the clock's current time.
func (c *ManualClock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// AfterFunc registers fn to run when the clock is advanced past d from now.
func (c *ManualClock) AfterFunc(d time.Duration, fn func()) Timer {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d < 0 {
		d = 0
	}
	t := &manualTimer{clock: c, at: c.now + d, seq: c.seq, fn: fn}
	c.seq++
	c.timers = append(c.timers, t)
	return t
}

// Advance moves the clock forward by d, firing every due timer in time order.
// Timers scheduled by fired callbacks fire too if they fall within the
// window.
func (c *ManualClock) Advance(d time.Duration) {
	c.mu.Lock()
	deadline := c.now + d
	for {
		idx := -1
		for i, t := range c.timers {
			if t.stopped {
				continue
			}
			if t.at > deadline {
				continue
			}
			if idx == -1 || t.at < c.timers[idx].at ||
				(t.at == c.timers[idx].at && t.seq < c.timers[idx].seq) {
				idx = i
			}
		}
		if idx == -1 {
			break
		}
		t := c.timers[idx]
		c.timers = append(c.timers[:idx], c.timers[idx+1:]...)
		if t.at > c.now {
			c.now = t.at
		}
		c.mu.Unlock()
		t.fn()
		c.mu.Lock()
	}
	if c.now < deadline {
		c.now = deadline
	}
	c.mu.Unlock()
}
