// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and an event queue ordered by firing
// time. All simulated activity — wire transmission, NIC interrupts, CPU
// processing, protocol timers — is expressed as events scheduled on a single
// Engine. Running the engine is single-threaded and fully deterministic for a
// given seed, which makes the performance experiments in this repository
// reproducible bit-for-bit.
//
// Virtual time is expressed as time.Duration since the start of the
// simulation.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Event is a scheduled callback. Events are ordered by firing time; ties are
// broken by scheduling order so that the simulation is deterministic.
type Event struct {
	at      time.Duration
	seq     uint64 // tie-breaker: scheduling order
	fn      func()
	stopped bool
	index   int // heap index, -1 when not queued
}

// At reports the virtual time at which the event fires.
func (e *Event) At() time.Duration { return e.at }

// Stop cancels the event. It reports whether the event was still pending.
// Stopping an already-fired or already-stopped event is a no-op.
func (e *Event) Stop() bool {
	if e.stopped || e.index < 0 {
		return false
	}
	e.stopped = true
	return true
}

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator. The zero value is not usable; create
// one with NewEngine.
type Engine struct {
	now     time.Duration
	queue   eventQueue
	seq     uint64
	rng     *rand.Rand
	running bool
	fired   uint64
}

// NewEngine returns an engine with the virtual clock at zero and a
// deterministic random source derived from seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Rand returns the engine's deterministic random source. Protocol and network
// models must draw all randomness from here to stay reproducible.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Fired reports how many events have been executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are queued (including stopped events that
// have not yet been discarded).
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at absolute virtual time at. Scheduling in the past
// panics: it always indicates a model bug, and silently reordering time would
// invalidate every measurement taken from the simulation.
func (e *Engine) At(at time.Duration, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	ev := &Event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d from now. Negative d is treated as zero.
func (e *Engine) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// step fires the earliest pending event. It reports false when the queue is
// empty.
func (e *Engine) step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.stopped {
			continue
		}
		e.now = ev.at
		e.fired++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue drains.
func (e *Engine) Run() {
	e.running = true
	defer func() { e.running = false }()
	for e.step() {
	}
}

// RunUntil executes events with firing time ≤ deadline, then advances the
// clock to deadline. Events scheduled beyond the deadline remain queued.
func (e *Engine) RunUntil(deadline time.Duration) {
	e.running = true
	defer func() { e.running = false }()
	for len(e.queue) > 0 {
		next := e.peek()
		if next == nil {
			break
		}
		if next.at > deadline {
			break
		}
		e.step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// RunWhile executes events while cond returns true and events remain.
func (e *Engine) RunWhile(cond func() bool) {
	e.running = true
	defer func() { e.running = false }()
	for cond() && e.step() {
	}
}

func (e *Engine) peek() *Event {
	for len(e.queue) > 0 {
		if !e.queue[0].stopped {
			return e.queue[0]
		}
		heap.Pop(&e.queue)
	}
	return nil
}
