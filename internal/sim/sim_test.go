package sim

import (
	"testing"
	"time"
)

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.After(30*time.Microsecond, func() { order = append(order, 3) })
	e.After(10*time.Microsecond, func() { order = append(order, 1) })
	e.After(20*time.Microsecond, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events out of order: %v", order)
	}
	if e.Now() != 30*time.Microsecond {
		t.Fatalf("clock = %v, want 30µs", e.Now())
	}
}

func TestEngineTiesBreakByScheduleOrder(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(time.Millisecond, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie order broken at %d: %v", i, order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine(1)
	var hits int
	e.After(time.Millisecond, func() {
		hits++
		e.After(time.Millisecond, func() {
			hits++
		})
	})
	e.Run()
	if hits != 2 {
		t.Fatalf("hits = %d, want 2", hits)
	}
	if e.Now() != 2*time.Millisecond {
		t.Fatalf("clock = %v, want 2ms", e.Now())
	}
}

func TestEngineStopCancelsEvent(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.After(time.Millisecond, func() { fired = true })
	if !ev.Stop() {
		t.Fatal("Stop reported event not pending")
	}
	if ev.Stop() {
		t.Fatal("second Stop should report false")
	}
	e.Run()
	if fired {
		t.Fatal("stopped event fired")
	}
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	e := NewEngine(1)
	e.After(time.Millisecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		e.At(0, func() {})
	})
	e.Run()
}

func TestEngineRunUntilStopsAtDeadline(t *testing.T) {
	e := NewEngine(1)
	var early, late bool
	e.After(time.Millisecond, func() { early = true })
	e.After(10*time.Millisecond, func() { late = true })
	e.RunUntil(5 * time.Millisecond)
	if !early {
		t.Fatal("event before deadline did not fire")
	}
	if late {
		t.Fatal("event after deadline fired")
	}
	if e.Now() != 5*time.Millisecond {
		t.Fatalf("clock = %v, want 5ms", e.Now())
	}
	e.Run()
	if !late {
		t.Fatal("remaining event lost after RunUntil")
	}
}

func TestEngineRunUntilAdvancesEmptyClock(t *testing.T) {
	e := NewEngine(1)
	e.RunUntil(time.Second)
	if e.Now() != time.Second {
		t.Fatalf("clock = %v, want 1s", e.Now())
	}
}

func TestEngineRunWhile(t *testing.T) {
	e := NewEngine(1)
	count := 0
	var tick func()
	tick = func() {
		count++
		e.After(time.Millisecond, tick)
	}
	e.After(time.Millisecond, tick)
	e.RunWhile(func() bool { return count < 5 })
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
}

func TestEngineDeterministicRand(t *testing.T) {
	a, b := NewEngine(42), NewEngine(42)
	for i := 0; i < 100; i++ {
		if a.Rand().Int63() != b.Rand().Int63() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestEngineFiredCount(t *testing.T) {
	e := NewEngine(1)
	for i := 0; i < 7; i++ {
		e.After(time.Duration(i)*time.Millisecond, func() {})
	}
	stopped := e.After(time.Millisecond, func() {})
	stopped.Stop()
	e.Run()
	if e.Fired() != 7 {
		t.Fatalf("Fired = %d, want 7", e.Fired())
	}
}

func TestEngineClock(t *testing.T) {
	e := NewEngine(1)
	c := NewEngineClock(e)
	fired := false
	c.AfterFunc(3*time.Millisecond, func() { fired = true })
	if c.Now() != 0 {
		t.Fatalf("Now = %v, want 0", c.Now())
	}
	e.Run()
	if !fired {
		t.Fatal("clock timer did not fire")
	}
	if c.Now() != 3*time.Millisecond {
		t.Fatalf("Now = %v, want 3ms", c.Now())
	}
}

func TestManualClockAdvanceFiresDueTimers(t *testing.T) {
	c := NewManualClock()
	var order []int
	c.AfterFunc(2*time.Millisecond, func() { order = append(order, 2) })
	c.AfterFunc(1*time.Millisecond, func() { order = append(order, 1) })
	c.AfterFunc(10*time.Millisecond, func() { order = append(order, 3) })
	c.Advance(5 * time.Millisecond)
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v, want [1 2]", order)
	}
	if c.Now() != 5*time.Millisecond {
		t.Fatalf("Now = %v, want 5ms", c.Now())
	}
	c.Advance(5 * time.Millisecond)
	if len(order) != 3 {
		t.Fatalf("late timer did not fire: %v", order)
	}
}

func TestManualClockStop(t *testing.T) {
	c := NewManualClock()
	fired := false
	tm := c.AfterFunc(time.Millisecond, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop reported not pending")
	}
	c.Advance(time.Second)
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestManualClockNestedTimers(t *testing.T) {
	c := NewManualClock()
	var times []time.Duration
	c.AfterFunc(time.Millisecond, func() {
		times = append(times, c.Now())
		c.AfterFunc(time.Millisecond, func() {
			times = append(times, c.Now())
		})
	})
	c.Advance(10 * time.Millisecond)
	if len(times) != 2 {
		t.Fatalf("fired %d timers, want 2", len(times))
	}
	if times[0] != time.Millisecond || times[1] != 2*time.Millisecond {
		t.Fatalf("fire times = %v", times)
	}
}

func TestRealClockAfterFunc(t *testing.T) {
	c := NewRealClock()
	ch := make(chan struct{})
	c.AfterFunc(time.Millisecond, func() { close(ch) })
	select {
	case <-ch:
	case <-time.After(time.Second):
		t.Fatal("real timer did not fire")
	}
	if c.Now() <= 0 {
		t.Fatal("real clock did not advance")
	}
}
