package memnet

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"amoeba/internal/netw"
)

// collector accumulates frames delivered to a station.
type collector struct {
	mu     sync.Mutex
	frames []netw.Frame
	notify chan struct{}
}

func newCollector(s netw.Station) *collector {
	c := &collector{notify: make(chan struct{}, 1024)}
	s.SetHandler(func(f netw.Frame) {
		c.mu.Lock()
		c.frames = append(c.frames, f)
		c.mu.Unlock()
		select {
		case c.notify <- struct{}{}:
		default:
		}
	})
	return c
}

func (c *collector) waitFor(t *testing.T, n int) []netw.Frame {
	t.Helper()
	deadline := time.After(2 * time.Second)
	for {
		c.mu.Lock()
		if len(c.frames) >= n {
			out := make([]netw.Frame, len(c.frames))
			copy(out, c.frames)
			c.mu.Unlock()
			return out
		}
		c.mu.Unlock()
		select {
		case <-c.notify:
		case <-deadline:
			c.mu.Lock()
			got := len(c.frames)
			c.mu.Unlock()
			t.Fatalf("timed out waiting for %d frames, have %d", n, got)
		}
	}
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.frames)
}

func TestUnicastDelivery(t *testing.T) {
	n := NewReliable()
	defer n.Close()
	a, _ := n.Attach("a")
	b, _ := n.Attach("b")
	cb := newCollector(b)
	newCollector(a)

	if err := a.Send(b.ID(), []byte("hello")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	frames := cb.waitFor(t, 1)
	if frames[0].Src != a.ID() || frames[0].Dst != b.ID() {
		t.Fatalf("frame addressing = %+v", frames[0])
	}
	if !bytes.Equal(frames[0].Payload, []byte("hello")) {
		t.Fatalf("payload = %q", frames[0].Payload)
	}
}

func TestUnicastFIFOPerPair(t *testing.T) {
	n := NewReliable()
	defer n.Close()
	a, _ := n.Attach("a")
	b, _ := n.Attach("b")
	cb := newCollector(b)

	const count = 200
	for i := 0; i < count; i++ {
		if err := a.Send(b.ID(), []byte{byte(i)}); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
	}
	frames := cb.waitFor(t, count)
	for i := 0; i < count; i++ {
		if frames[i].Payload[0] != byte(i) {
			t.Fatalf("frame %d out of order: got %d", i, frames[i].Payload[0])
		}
	}
}

func TestMulticastReachesOnlySubscribers(t *testing.T) {
	n := NewReliable()
	defer n.Close()
	a, _ := n.Attach("a")
	b, _ := n.Attach("b")
	c, _ := n.Attach("c")
	cb := newCollector(b)
	cc := newCollector(c)

	const ch netw.ChannelID = 7
	b.Subscribe(ch)

	if err := a.Multicast(ch, []byte("mc")); err != nil {
		t.Fatalf("Multicast: %v", err)
	}
	frames := cb.waitFor(t, 1)
	if frames[0].Dst != netw.Broadcast || frames[0].Channel != ch {
		t.Fatalf("multicast frame = %+v", frames[0])
	}
	// c never subscribed; give the network a moment and confirm nothing
	// arrived.
	time.Sleep(20 * time.Millisecond)
	if cc.count() != 0 {
		t.Fatalf("unsubscribed station received %d frames", cc.count())
	}
}

func TestMulticastExcludesSender(t *testing.T) {
	n := NewReliable()
	defer n.Close()
	a, _ := n.Attach("a")
	b, _ := n.Attach("b")
	ca := newCollector(a)
	cb := newCollector(b)

	const ch netw.ChannelID = 3
	a.Subscribe(ch)
	b.Subscribe(ch)

	if err := a.Multicast(ch, []byte("x")); err != nil {
		t.Fatalf("Multicast: %v", err)
	}
	cb.waitFor(t, 1)
	time.Sleep(20 * time.Millisecond)
	if ca.count() != 0 {
		t.Fatal("sender received its own multicast")
	}
}

func TestUnsubscribeStopsDelivery(t *testing.T) {
	n := NewReliable()
	defer n.Close()
	a, _ := n.Attach("a")
	b, _ := n.Attach("b")
	cb := newCollector(b)

	const ch netw.ChannelID = 9
	b.Subscribe(ch)
	_ = a.Multicast(ch, []byte("1"))
	cb.waitFor(t, 1)
	b.Unsubscribe(ch)
	_ = a.Multicast(ch, []byte("2"))
	time.Sleep(20 * time.Millisecond)
	if cb.count() != 1 {
		t.Fatalf("received %d frames after unsubscribe, want 1", cb.count())
	}
}

func TestFrameTooLarge(t *testing.T) {
	n := NewReliable()
	defer n.Close()
	a, _ := n.Attach("a")
	b, _ := n.Attach("b")
	big := make([]byte, netw.MTU+1)
	if err := a.Send(b.ID(), big); err == nil {
		t.Fatal("oversize Send succeeded")
	}
	if err := a.Multicast(1, big); err == nil {
		t.Fatal("oversize Multicast succeeded")
	}
	ok := make([]byte, netw.MTU)
	if err := a.Send(b.ID(), ok); err != nil {
		t.Fatalf("MTU-size Send failed: %v", err)
	}
}

func TestClosedStationRejectsSendsAndDropsInbound(t *testing.T) {
	n := NewReliable()
	defer n.Close()
	a, _ := n.Attach("a")
	b, _ := n.Attach("b")
	cb := newCollector(b)
	if err := b.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := b.Send(a.ID(), []byte("x")); err == nil {
		t.Fatal("send on closed station succeeded")
	}
	_ = a.Send(b.ID(), []byte("y"))
	time.Sleep(20 * time.Millisecond)
	if cb.count() != 0 {
		t.Fatal("closed station received a frame")
	}
	// Closing twice is fine.
	if err := b.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestSendToUnknownStationIsDropped(t *testing.T) {
	n := NewReliable()
	defer n.Close()
	a, _ := n.Attach("a")
	// No station 42: the frame vanishes, like an Ethernet frame to an
	// absent MAC.
	if err := a.Send(42, []byte("x")); err != nil {
		t.Fatalf("Send to absent station returned error: %v", err)
	}
}

func TestDropInjection(t *testing.T) {
	n := New(Config{DropRate: 1.0, Seed: 1})
	defer n.Close()
	a, _ := n.Attach("a")
	b, _ := n.Attach("b")
	cb := newCollector(b)
	for i := 0; i < 50; i++ {
		_ = a.Send(b.ID(), []byte("x"))
	}
	time.Sleep(20 * time.Millisecond)
	if cb.count() != 0 {
		t.Fatalf("DropRate=1 delivered %d frames", cb.count())
	}
	if n.Dropped() != 50 {
		t.Fatalf("Dropped = %d, want 50", n.Dropped())
	}
}

func TestDuplicateInjection(t *testing.T) {
	n := New(Config{DupRate: 1.0, Seed: 1})
	defer n.Close()
	a, _ := n.Attach("a")
	b, _ := n.Attach("b")
	cb := newCollector(b)
	_ = a.Send(b.ID(), []byte("x"))
	frames := cb.waitFor(t, 2)
	if len(frames) < 2 {
		t.Fatal("duplicate not delivered")
	}
}

func TestCorruptInjectionFlipsExactlyOneBit(t *testing.T) {
	n := New(Config{CorruptRate: 1.0, Seed: 1})
	defer n.Close()
	a, _ := n.Attach("a")
	b, _ := n.Attach("b")
	cb := newCollector(b)
	orig := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	_ = a.Send(b.ID(), append([]byte(nil), orig...))
	frames := cb.waitFor(t, 1)
	diff := 0
	for i := range orig {
		if frames[0].Payload[i] != orig[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("corruption changed %d bytes, want 1", diff)
	}
}

func TestRingOverflowDrops(t *testing.T) {
	n := New(Config{RingSize: 4, Seed: 1})
	a, _ := n.Attach("a")
	b, _ := n.Attach("b")
	// No handler on b: install one that blocks until released so the ring
	// fills.
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	b.SetHandler(func(netw.Frame) {
		select {
		case started <- struct{}{}:
		default:
		}
		<-release
	})
	for i := 0; i < 20; i++ {
		_ = a.Send(b.ID(), []byte{byte(i)})
	}
	<-started
	if n.Dropped() == 0 {
		t.Fatal("no frames dropped despite tiny ring")
	}
	close(release)
	n.Close()
}

func TestReceiverOwnsPayloadCopy(t *testing.T) {
	n := NewReliable()
	defer n.Close()
	a, _ := n.Attach("a")
	b, _ := n.Attach("b")
	cb := newCollector(b)
	buf := []byte("mutate-me")
	_ = a.Send(b.ID(), buf)
	frames := cb.waitFor(t, 1)
	buf[0] = 'X' // sender reuses its buffer
	if frames[0].Payload[0] != 'm' {
		t.Fatal("receiver payload aliases sender buffer")
	}
}

func TestConcurrentSendersNoRace(t *testing.T) {
	n := NewReliable()
	defer n.Close()
	recv, _ := n.Attach("recv")
	cr := newCollector(recv)
	const senders, per = 8, 50
	var wg sync.WaitGroup
	for i := 0; i < senders; i++ {
		s, _ := n.Attach("s")
		newCollector(s)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				_ = s.Send(recv.ID(), []byte{byte(j)})
			}
		}()
	}
	wg.Wait()
	cr.waitFor(t, senders*per)
}
