package memnet

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"amoeba/internal/netw"
)

// collector accumulates frames delivered to a station.
type collector struct {
	mu     sync.Mutex
	frames []netw.Frame
	notify chan struct{}
}

func newCollector(s netw.Station) *collector {
	c := &collector{notify: make(chan struct{}, 1024)}
	s.SetHandler(func(f netw.Frame) {
		c.mu.Lock()
		c.frames = append(c.frames, f)
		c.mu.Unlock()
		select {
		case c.notify <- struct{}{}:
		default:
		}
	})
	return c
}

func (c *collector) waitFor(t *testing.T, n int) []netw.Frame {
	t.Helper()
	deadline := time.After(2 * time.Second)
	for {
		c.mu.Lock()
		if len(c.frames) >= n {
			out := make([]netw.Frame, len(c.frames))
			copy(out, c.frames)
			c.mu.Unlock()
			return out
		}
		c.mu.Unlock()
		select {
		case <-c.notify:
		case <-deadline:
			c.mu.Lock()
			got := len(c.frames)
			c.mu.Unlock()
			t.Fatalf("timed out waiting for %d frames, have %d", n, got)
		}
	}
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.frames)
}

func TestUnicastDelivery(t *testing.T) {
	n := NewReliable()
	defer n.Close()
	a, _ := n.Attach("a")
	b, _ := n.Attach("b")
	cb := newCollector(b)
	newCollector(a)

	if err := a.Send(b.ID(), []byte("hello")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	frames := cb.waitFor(t, 1)
	if frames[0].Src != a.ID() || frames[0].Dst != b.ID() {
		t.Fatalf("frame addressing = %+v", frames[0])
	}
	if !bytes.Equal(frames[0].Payload, []byte("hello")) {
		t.Fatalf("payload = %q", frames[0].Payload)
	}
}

func TestUnicastFIFOPerPair(t *testing.T) {
	n := NewReliable()
	defer n.Close()
	a, _ := n.Attach("a")
	b, _ := n.Attach("b")
	cb := newCollector(b)

	const count = 200
	for i := 0; i < count; i++ {
		if err := a.Send(b.ID(), []byte{byte(i)}); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
	}
	frames := cb.waitFor(t, count)
	for i := 0; i < count; i++ {
		if frames[i].Payload[0] != byte(i) {
			t.Fatalf("frame %d out of order: got %d", i, frames[i].Payload[0])
		}
	}
}

func TestMulticastReachesOnlySubscribers(t *testing.T) {
	n := NewReliable()
	defer n.Close()
	a, _ := n.Attach("a")
	b, _ := n.Attach("b")
	c, _ := n.Attach("c")
	cb := newCollector(b)
	cc := newCollector(c)

	const ch netw.ChannelID = 7
	b.Subscribe(ch)

	if err := a.Multicast(ch, []byte("mc")); err != nil {
		t.Fatalf("Multicast: %v", err)
	}
	frames := cb.waitFor(t, 1)
	if frames[0].Dst != netw.Broadcast || frames[0].Channel != ch {
		t.Fatalf("multicast frame = %+v", frames[0])
	}
	// c never subscribed; give the network a moment and confirm nothing
	// arrived.
	time.Sleep(20 * time.Millisecond)
	if cc.count() != 0 {
		t.Fatalf("unsubscribed station received %d frames", cc.count())
	}
}

func TestMulticastExcludesSender(t *testing.T) {
	n := NewReliable()
	defer n.Close()
	a, _ := n.Attach("a")
	b, _ := n.Attach("b")
	ca := newCollector(a)
	cb := newCollector(b)

	const ch netw.ChannelID = 3
	a.Subscribe(ch)
	b.Subscribe(ch)

	if err := a.Multicast(ch, []byte("x")); err != nil {
		t.Fatalf("Multicast: %v", err)
	}
	cb.waitFor(t, 1)
	time.Sleep(20 * time.Millisecond)
	if ca.count() != 0 {
		t.Fatal("sender received its own multicast")
	}
}

func TestUnsubscribeStopsDelivery(t *testing.T) {
	n := NewReliable()
	defer n.Close()
	a, _ := n.Attach("a")
	b, _ := n.Attach("b")
	cb := newCollector(b)

	const ch netw.ChannelID = 9
	b.Subscribe(ch)
	_ = a.Multicast(ch, []byte("1"))
	cb.waitFor(t, 1)
	b.Unsubscribe(ch)
	_ = a.Multicast(ch, []byte("2"))
	time.Sleep(20 * time.Millisecond)
	if cb.count() != 1 {
		t.Fatalf("received %d frames after unsubscribe, want 1", cb.count())
	}
}

func TestFrameTooLarge(t *testing.T) {
	n := NewReliable()
	defer n.Close()
	a, _ := n.Attach("a")
	b, _ := n.Attach("b")
	big := make([]byte, netw.MTU+1)
	if err := a.Send(b.ID(), big); err == nil {
		t.Fatal("oversize Send succeeded")
	}
	if err := a.Multicast(1, big); err == nil {
		t.Fatal("oversize Multicast succeeded")
	}
	ok := make([]byte, netw.MTU)
	if err := a.Send(b.ID(), ok); err != nil {
		t.Fatalf("MTU-size Send failed: %v", err)
	}
}

func TestClosedStationRejectsSendsAndDropsInbound(t *testing.T) {
	n := NewReliable()
	defer n.Close()
	a, _ := n.Attach("a")
	b, _ := n.Attach("b")
	cb := newCollector(b)
	if err := b.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := b.Send(a.ID(), []byte("x")); err == nil {
		t.Fatal("send on closed station succeeded")
	}
	_ = a.Send(b.ID(), []byte("y"))
	time.Sleep(20 * time.Millisecond)
	if cb.count() != 0 {
		t.Fatal("closed station received a frame")
	}
	// Closing twice is fine.
	if err := b.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestSendToUnknownStationIsDropped(t *testing.T) {
	n := NewReliable()
	defer n.Close()
	a, _ := n.Attach("a")
	// No station 42: the frame vanishes, like an Ethernet frame to an
	// absent MAC.
	if err := a.Send(42, []byte("x")); err != nil {
		t.Fatalf("Send to absent station returned error: %v", err)
	}
}

func TestDropInjection(t *testing.T) {
	n := New(Config{DropRate: 1.0, Seed: 1})
	defer n.Close()
	a, _ := n.Attach("a")
	b, _ := n.Attach("b")
	cb := newCollector(b)
	for i := 0; i < 50; i++ {
		_ = a.Send(b.ID(), []byte("x"))
	}
	time.Sleep(20 * time.Millisecond)
	if cb.count() != 0 {
		t.Fatalf("DropRate=1 delivered %d frames", cb.count())
	}
	if n.Dropped() != 50 {
		t.Fatalf("Dropped = %d, want 50", n.Dropped())
	}
}

func TestDuplicateInjection(t *testing.T) {
	n := New(Config{DupRate: 1.0, Seed: 1})
	defer n.Close()
	a, _ := n.Attach("a")
	b, _ := n.Attach("b")
	cb := newCollector(b)
	_ = a.Send(b.ID(), []byte("x"))
	frames := cb.waitFor(t, 2)
	if len(frames) < 2 {
		t.Fatal("duplicate not delivered")
	}
}

func TestCorruptInjectionFlipsExactlyOneBit(t *testing.T) {
	n := New(Config{CorruptRate: 1.0, Seed: 1})
	defer n.Close()
	a, _ := n.Attach("a")
	b, _ := n.Attach("b")
	cb := newCollector(b)
	orig := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	_ = a.Send(b.ID(), append([]byte(nil), orig...))
	frames := cb.waitFor(t, 1)
	diff := 0
	for i := range orig {
		if frames[0].Payload[i] != orig[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("corruption changed %d bytes, want 1", diff)
	}
}

func TestRingOverflowDrops(t *testing.T) {
	n := New(Config{RingSize: 4, Seed: 1})
	a, _ := n.Attach("a")
	b, _ := n.Attach("b")
	// No handler on b: install one that blocks until released so the ring
	// fills.
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	b.SetHandler(func(netw.Frame) {
		select {
		case started <- struct{}{}:
		default:
		}
		<-release
	})
	for i := 0; i < 20; i++ {
		_ = a.Send(b.ID(), []byte{byte(i)})
	}
	<-started
	if n.Dropped() == 0 {
		t.Fatal("no frames dropped despite tiny ring")
	}
	close(release)
	n.Close()
}

func TestReceiverOwnsPayloadCopy(t *testing.T) {
	n := NewReliable()
	defer n.Close()
	a, _ := n.Attach("a")
	b, _ := n.Attach("b")
	cb := newCollector(b)
	buf := []byte("mutate-me")
	_ = a.Send(b.ID(), buf)
	frames := cb.waitFor(t, 1)
	buf[0] = 'X' // sender reuses its buffer
	if frames[0].Payload[0] != 'm' {
		t.Fatal("receiver payload aliases sender buffer")
	}
}

func TestConcurrentSendersNoRace(t *testing.T) {
	n := NewReliable()
	defer n.Close()
	recv, _ := n.Attach("recv")
	cr := newCollector(recv)
	const senders, per = 8, 50
	var wg sync.WaitGroup
	for i := 0; i < senders; i++ {
		s, _ := n.Attach("s")
		newCollector(s)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				_ = s.Send(recv.ID(), []byte{byte(j)})
			}
		}()
	}
	wg.Wait()
	cr.waitFor(t, senders*per)
}

func TestReorderInjectionSwapsAdjacentFrames(t *testing.T) {
	n := New(Config{ReorderRate: 1.0, Seed: 7})
	defer n.Close()
	a, _ := n.Attach("a")
	b, _ := n.Attach("b")
	cb := newCollector(b)
	// With ReorderRate=1 every frame is held until the next one arrives:
	// frame 0 is held, frame 1 arrives and is delivered first with frame 0
	// released behind it, frame 2 is held (slot now free), and so on.
	for i := 0; i < 6; i++ {
		_ = a.Send(b.ID(), []byte{byte(i)})
	}
	frames := cb.waitFor(t, 6)
	var got []byte
	for _, f := range frames {
		got = append(got, f.Payload[0])
	}
	want := []byte{1, 0, 3, 2, 5, 4}
	if !bytes.Equal(got, want) {
		t.Fatalf("delivery order = %v, want %v", got, want)
	}
}

func TestSetReorderRateZeroReleasesHeldFrame(t *testing.T) {
	n := New(Config{ReorderRate: 1.0, Seed: 7})
	defer n.Close()
	a, _ := n.Attach("a")
	b, _ := n.Attach("b")
	cb := newCollector(b)
	_ = a.Send(b.ID(), []byte{42}) // held, waiting for a successor
	time.Sleep(10 * time.Millisecond)
	if cb.count() != 0 {
		t.Fatalf("held frame delivered early (%d frames)", cb.count())
	}
	n.SetReorderRate(0)
	frames := cb.waitFor(t, 1)
	if frames[0].Payload[0] != 42 {
		t.Fatalf("released frame payload = %d", frames[0].Payload[0])
	}
}

func TestPartitionAndHeal(t *testing.T) {
	n := NewReliable()
	defer n.Close()
	a, _ := n.Attach("a")
	b, _ := n.Attach("b")
	c, _ := n.Attach("c")
	cb := newCollector(b)
	cc := newCollector(c)

	n.Partition(a.ID(), b.ID())
	_ = a.Send(b.ID(), []byte("cut"))
	_ = b.Send(a.ID(), []byte("cut-back"))
	_ = a.Send(c.ID(), []byte("ok"))
	cc.waitFor(t, 1) // the uncut pair still flows
	time.Sleep(20 * time.Millisecond)
	if cb.count() != 0 {
		t.Fatalf("partitioned pair delivered %d frames", cb.count())
	}

	// Multicast honours the cut too: b subscribed but partitioned from a.
	const ch netw.ChannelID = 5
	b.Subscribe(ch)
	c.Subscribe(ch)
	_ = a.Multicast(ch, []byte("mc"))
	cc.waitFor(t, 2)
	time.Sleep(20 * time.Millisecond)
	if cb.count() != 0 {
		t.Fatalf("partitioned subscriber got the multicast")
	}

	n.Heal()
	_ = a.Send(b.ID(), []byte("healed"))
	frames := cb.waitFor(t, 1)
	if string(frames[0].Payload) != "healed" {
		t.Fatalf("post-heal payload = %q", frames[0].Payload)
	}
}

// runFaultScript drives one seeded network through a fixed single-threaded
// transmit sequence and returns the delivery order observed at the receiver
// plus the drop counter — the network's observable fault fingerprint.
func runFaultScript(t *testing.T, cfg Config) ([]byte, uint64) {
	t.Helper()
	n := New(cfg)
	defer n.Close()
	a, _ := n.Attach("a")
	b, _ := n.Attach("b")
	cb := newCollector(b)
	const frames = 400
	for i := 0; i < frames; i++ {
		_ = a.Send(b.ID(), []byte{byte(i)})
	}
	n.SetReorderRate(0) // flush any frame still held for a swap
	// Every frame was either delivered (maybe twice, maybe reordered) or
	// counted dropped; wait until the books balance.
	deadline := time.After(2 * time.Second)
	for {
		if uint64(cb.count())+n.Dropped() >= frames {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("only %d delivered + %d dropped of %d", cb.count(), n.Dropped(), frames)
		case <-time.After(time.Millisecond):
		}
	}
	time.Sleep(10 * time.Millisecond) // absorb trailing duplicates
	var got []byte
	cb.mu.Lock()
	for _, f := range cb.frames {
		got = append(got, f.Payload[0])
	}
	cb.mu.Unlock()
	return got, n.Dropped()
}

func TestFaultInjectionDeterministicForFixedSeed(t *testing.T) {
	cfg := Config{DropRate: 0.2, DuplicateRate: 0.1, ReorderRate: 0.3, Seed: 99}
	order1, dropped1 := runFaultScript(t, cfg)
	order2, dropped2 := runFaultScript(t, cfg)
	if !bytes.Equal(order1, order2) || dropped1 != dropped2 {
		t.Fatalf("same seed diverged: %d vs %d frames, %d vs %d dropped",
			len(order1), len(order2), dropped1, dropped2)
	}
	// And a different seed must actually change the fingerprint — the test
	// would otherwise pass on a network that ignores its seed entirely.
	cfg.Seed = 100
	order3, dropped3 := runFaultScript(t, cfg)
	if bytes.Equal(order1, order3) && dropped1 == dropped3 {
		t.Fatal("different seeds produced identical fault fingerprints")
	}
}
