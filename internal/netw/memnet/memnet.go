// Package memnet implements netw.Network with goroutines and channels.
//
// memnet is the "real" transport used by tests, examples, and native
// benchmarks: frames move between stations through buffered channels and each
// station delivers inbound frames serially from its own goroutine, modelling
// a NIC interrupt handler. Delivery is FIFO per (sender, receiver) pair and
// unreliable: a full receive ring drops frames, and the network can inject
// drops, duplicates, and corruption deterministically from a seed, which the
// protocol test suites use to exercise recovery paths.
package memnet

import (
	"fmt"
	"math/rand"
	"sync"

	"amoeba/internal/netw"
)

// Config controls fault injection and buffering for a Network.
type Config struct {
	// DropRate is the probability in [0,1) that any frame is silently
	// discarded in transit.
	DropRate float64
	// DuplicateRate is the probability that a delivered frame is delivered
	// twice.
	DuplicateRate float64
	// DupRate is a legacy alias for DuplicateRate, honoured when
	// DuplicateRate is zero.
	DupRate float64
	// ReorderRate is the probability that a frame is held back and
	// delivered after the next frame bound for the same station: the
	// pairwise swap real switches and retransmission races produce.
	// A held frame with no successor is released when the rate is set
	// back to zero (or the station closes).
	ReorderRate float64
	// CorruptRate is the probability that a delivered frame has one byte
	// flipped. Corruption is detected by the FLIP checksum, so corrupted
	// frames exercise the "garbled message" recovery path.
	CorruptRate float64
	// RingSize is each station's receive buffer in frames. Frames arriving
	// at a full ring are dropped, as on the paper's Lance interfaces.
	// Defaults to 1024; the simulator uses the paper's 32.
	RingSize int
	// Seed drives the fault-injection randomness. All fault decisions are
	// drawn from one seeded source under the network lock, so a fixed seed
	// and a fixed transmit sequence produce identical faults — the
	// reproducibility the fuzz harness's schedules rely on.
	Seed int64
}

// Network is an in-memory netw.Network.
type Network struct {
	cfg Config

	mu       sync.Mutex
	rng      *rand.Rand
	stations []*station
	isolated map[netw.NodeID]bool
	// cut holds pairwise partitions installed by Partition: frames between
	// the two stations (either direction) are silently dropped.
	cut     map[[2]netw.NodeID]bool
	dropped uint64
}

var _ netw.Network = (*Network)(nil)

// New returns a Network with the given fault-injection configuration.
func New(cfg Config) *Network {
	if cfg.RingSize <= 0 {
		cfg.RingSize = 1024
	}
	if cfg.DuplicateRate == 0 {
		cfg.DuplicateRate = cfg.DupRate
	}
	return &Network{
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		isolated: make(map[netw.NodeID]bool),
		cut:      make(map[[2]netw.NodeID]bool),
	}
}

// Isolate partitions a station from the network: frames to and from it are
// silently dropped, modelling a cable pull or a partition. Unlike closing
// the station, the victim keeps running and can be Rejoined.
func (n *Network) Isolate(id netw.NodeID, partitioned bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if partitioned {
		n.isolated[id] = true
	} else {
		delete(n.isolated, id)
	}
}

// cutKey orders a station pair canonically.
func cutKey(a, b netw.NodeID) [2]netw.NodeID {
	if a > b {
		a, b = b, a
	}
	return [2]netw.NodeID{a, b}
}

// Partition cuts the link between two stations: frames between them, in
// either direction, are silently dropped until Heal. Unlike Isolate, both
// stations keep talking to everyone else — the asymmetric split that drives
// a group's members to conflicting failure suspicions.
func (n *Network) Partition(a, b netw.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cut[cutKey(a, b)] = true
}

// Heal removes every pairwise partition installed by Partition (isolations
// installed by Isolate are independent and stay).
func (n *Network) Heal() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cut = make(map[[2]netw.NodeID]bool)
}

// SetDropRate changes the frame-loss probability at runtime.
func (n *Network) SetDropRate(p float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cfg.DropRate = p
}

// SetDuplicateRate changes the frame-duplication probability at runtime.
func (n *Network) SetDuplicateRate(p float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cfg.DuplicateRate = p
}

// SetReorderRate changes the frame-reordering probability at runtime.
// Setting it to zero releases any frames still held back for a swap.
func (n *Network) SetReorderRate(p float64) {
	n.mu.Lock()
	n.cfg.ReorderRate = p
	var flush []*station
	if p <= 0 {
		for _, s := range n.stations {
			if s.held != nil {
				flush = append(flush, s)
			}
		}
	}
	n.mu.Unlock()
	for _, s := range flush {
		n.mu.Lock()
		f := s.held
		s.held = nil
		n.mu.Unlock()
		if f != nil {
			n.enqueue(s, *f, 1)
		}
	}
}

// NewReliable returns a Network that never drops, duplicates, or corrupts
// frames (beyond receive-ring overflow, which the large default ring makes
// unlikely).
func NewReliable() *Network { return New(Config{}) }

// Dropped reports the number of frames discarded so far, from both fault
// injection and ring overflow.
func (n *Network) Dropped() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.dropped
}

// Attach creates a new station on the network.
func (n *Network) Attach(name string) (netw.Station, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	s := &station{
		net:  n,
		id:   netw.NodeID(len(n.stations)),
		name: name,
		ring: make(chan netw.Frame, n.cfg.RingSize),
		subs: make(map[netw.ChannelID]bool),
		done: make(chan struct{}),
	}
	n.stations = append(n.stations, s)
	s.wg.Add(1)
	go s.deliverLoop()
	return s, nil
}

// Close detaches every station and waits for their delivery goroutines.
func (n *Network) Close() {
	n.mu.Lock()
	stations := make([]*station, len(n.stations))
	copy(stations, n.stations)
	n.mu.Unlock()
	for _, s := range stations {
		_ = s.Close()
	}
}

// transmit routes one frame, applying fault injection. Called with payload
// already copied.
func (n *Network) transmit(f netw.Frame) {
	n.mu.Lock()
	if n.isolated[f.Src] {
		n.dropped++
		n.mu.Unlock()
		return
	}
	if n.roll(n.cfg.DropRate) {
		n.dropped++
		n.mu.Unlock()
		return
	}
	copies := 1
	if n.roll(n.cfg.DuplicateRate) {
		copies = 2
	}
	corrupt := n.roll(n.cfg.CorruptRate)
	var targets []*station
	if f.Dst == netw.Broadcast {
		for _, s := range n.stations {
			if s.id == f.Src || n.isolated[s.id] || n.cut[cutKey(f.Src, s.id)] {
				continue
			}
			s.mu.Lock()
			subscribed := !s.closed && s.subs[f.Channel]
			s.mu.Unlock()
			if subscribed {
				targets = append(targets, s)
			}
		}
	} else if int(f.Dst) < len(n.stations) && f.Dst >= 0 && !n.isolated[f.Dst] && !n.cut[cutKey(f.Src, f.Dst)] {
		targets = append(targets, n.stations[f.Dst])
	}
	// Reorder decisions draw once per target while the lock still
	// serialises the rng, keeping the draw sequence a pure function of the
	// transmit sequence. A held-back frame is released behind the next
	// frame bound for the same station — the pairwise swap.
	type delivery struct {
		s      *station
		frames []netw.Frame
	}
	plan := make([]delivery, 0, len(targets))
	for _, s := range targets {
		d := delivery{s: s}
		if prev := s.held; prev != nil {
			s.held = nil
			d.frames = append(d.frames, f, *prev)
		} else if n.roll(n.cfg.ReorderRate) {
			held := f
			held.Payload = append([]byte(nil), f.Payload...)
			s.held = &held
		} else {
			d.frames = append(d.frames, f)
		}
		if len(d.frames) > 0 {
			plan = append(plan, d)
		}
	}
	n.mu.Unlock()

	if corrupt && len(f.Payload) > 0 {
		// Flip one bit of a copy so other receivers of the same
		// multicast still see the original bytes.
		b := make([]byte, len(f.Payload))
		copy(b, f.Payload)
		n.mu.Lock()
		i := n.rng.Intn(len(b))
		n.mu.Unlock()
		b[i] ^= 0x40
		// frames[0] is always the frame transmitted now (a released
		// held frame rides second and keeps its original bytes).
		for pi := range plan {
			plan[pi].frames[0].Payload = b
		}
	}

	for _, d := range plan {
		for _, fr := range d.frames {
			n.enqueue(d.s, fr, copies)
		}
	}
}

// enqueue delivers one frame to a station's receive ring, copies times,
// dropping on overflow.
func (n *Network) enqueue(s *station, f netw.Frame, copies int) {
	for c := 0; c < copies; c++ {
		// Per-receiver copy: receivers own their frame buffers.
		dup := f
		dup.Payload = make([]byte, len(f.Payload))
		copy(dup.Payload, f.Payload)
		select {
		case s.ring <- dup:
		default: // receive ring overflow: drop, as the Lance does
			n.mu.Lock()
			n.dropped++
			n.mu.Unlock()
		}
	}
}

// roll must be called with n.mu held.
func (n *Network) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	return n.rng.Float64() < p
}

type station struct {
	net  *Network
	id   netw.NodeID
	name string
	ring chan netw.Frame
	done chan struct{}
	wg   sync.WaitGroup
	// held is a frame delayed by ReorderRate, waiting for the next frame
	// bound for this station to swap behind. Guarded by net.mu.
	held *netw.Frame

	mu      sync.Mutex
	handler netw.Handler
	subs    map[netw.ChannelID]bool
	closed  bool
}

var _ netw.Station = (*station)(nil)

func (s *station) ID() netw.NodeID { return s.id }

func (s *station) SetHandler(h netw.Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handler = h
}

func (s *station) Subscribe(ch netw.ChannelID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.subs[ch] = true
}

func (s *station) Unsubscribe(ch netw.ChannelID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.subs, ch)
}

func (s *station) Send(dst netw.NodeID, payload []byte) error {
	if err := s.checkSend(payload); err != nil {
		return err
	}
	s.net.transmit(netw.Frame{Src: s.id, Dst: dst, Payload: payload})
	return nil
}

func (s *station) Multicast(ch netw.ChannelID, payload []byte) error {
	if err := s.checkSend(payload); err != nil {
		return err
	}
	s.net.transmit(netw.Frame{Src: s.id, Dst: netw.Broadcast, Channel: ch, Payload: payload})
	return nil
}

func (s *station) checkSend(payload []byte) error {
	if len(payload) > netw.MTU {
		return fmt.Errorf("%w: %d bytes", netw.ErrFrameTooLarge, len(payload))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return netw.ErrClosed
	}
	return nil
}

func (s *station) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.done)
	s.wg.Wait()
	return nil
}

func (s *station) deliverLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.done:
			return
		case f := <-s.ring:
			s.mu.Lock()
			h := s.handler
			closed := s.closed
			s.mu.Unlock()
			if h != nil && !closed {
				h(f)
			}
		}
	}
}
