// Package netw defines the link-layer abstraction shared by every protocol
// implementation in this repository.
//
// The abstraction models an Ethernet-like network: stations attached to a
// shared medium exchange bounded-size frames by unicast or by multicast
// channel. Multicast channels model hardware multicast filtering (the Lance
// NICs in the paper): only stations subscribed to a channel receive — and pay
// an interrupt for — frames sent on it. This is what makes the PB method cost
// n interrupts per broadcast rather than interrupting every host on the wire.
//
// Two implementations exist: memnet (goroutines and channels, for tests,
// examples, and native benchmarks, with optional fault injection) and netsim
// (a calibrated discrete-event model of the paper's 10 Mbit/s Ethernet,
// Lance receive rings, and MC68030 processing costs).
package netw

import "errors"

// MTU is the maximum frame payload in bytes, matching the Ethernet maximum
// frame size used by the paper's Lance interfaces.
const MTU = 1514

// NodeID identifies a station on a network. IDs are assigned densely from 0
// in attachment order.
type NodeID int

// Broadcast is the destination NodeID used in delivered multicast frames.
const Broadcast NodeID = -1

// ChannelID identifies a multicast channel. Stations receive multicast frames
// only for channels they have subscribed to.
type ChannelID uint32

// Frame is a single link-layer frame as seen by a receiver.
type Frame struct {
	// Src is the sending station.
	Src NodeID
	// Dst is the receiving station, or Broadcast for multicast frames.
	Dst NodeID
	// Channel is the multicast channel; meaningful only when Dst is
	// Broadcast.
	Channel ChannelID
	// Payload is the frame body. Receivers must not retain it past the
	// handler call; implementations may reuse the buffer.
	Payload []byte
}

// Handler receives inbound frames. Handlers for a given station are invoked
// serially, modelling a NIC interrupt handler; they may send frames.
type Handler func(Frame)

// Station is one attachment point on a network.
type Station interface {
	// ID returns the station's network-assigned identifier.
	ID() NodeID
	// Send transmits payload to the station dst. It returns
	// ErrFrameTooLarge if the payload exceeds MTU and ErrClosed after
	// Close. Delivery is unreliable: frames may be dropped (buffer
	// overflow, injected faults) without error.
	Send(dst NodeID, payload []byte) error
	// Multicast transmits payload to every station subscribed to ch,
	// excluding the sender itself (matching NIC behaviour: a station does
	// not interrupt itself for its own multicast).
	Multicast(ch ChannelID, payload []byte) error
	// Subscribe adds ch to the station's multicast filter.
	Subscribe(ch ChannelID)
	// Unsubscribe removes ch from the station's multicast filter.
	Unsubscribe(ch ChannelID)
	// SetHandler installs the inbound frame handler. It must be called
	// before any traffic is directed at the station.
	SetHandler(h Handler)
	// Close detaches the station. Subsequent sends fail with ErrClosed and
	// inbound frames are discarded, modelling a crashed processor.
	Close() error
}

// Network is a medium to which stations can be attached.
type Network interface {
	// Attach creates a new station. The name is used in diagnostics only.
	Attach(name string) (Station, error)
}

// Errors returned by Station implementations.
var (
	// ErrFrameTooLarge reports a payload exceeding the MTU.
	ErrFrameTooLarge = errors.New("netw: frame exceeds MTU")
	// ErrClosed reports use of a closed station.
	ErrClosed = errors.New("netw: station closed")
	// ErrUnknownStation reports a send to a NodeID that was never attached.
	ErrUnknownStation = errors.New("netw: unknown destination station")
)
