// Package udpnet implements netw.Network over real UDP sockets, making the
// protocol stack deployable across processes and machines.
//
// Each station binds one UDP socket. The peer set is static configuration
// (addresses exchanged out of band, as cluster deployments do); multicast is
// implemented as fan-out unicast to every peer — FLIP's own position
// ("multicast is an optimisation over n point-to-point messages") — with
// channel filtering at the receiver, like a NIC without a hardware multicast
// filter. UDP supplies the paper's failure model for free: datagrams are
// lost, duplicated, and reordered, which is exactly what the negative-
// acknowledgement machinery recovers from.
//
// Frame layout on the wire: 1 byte type (unicast/multicast), 4 bytes source
// node id, 4 bytes channel id, payload.
package udpnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"

	"amoeba/internal/netw"
)

const (
	frameHeader   = 9
	typeUnicast   = 1
	typeMulticast = 2
)

// Network is a set of UDP stations created in one process. For cross-process
// deployments, create a single Station per process with NewStation.
type Network struct {
	mu       sync.Mutex
	stations []*Station
}

var _ netw.Network = (*Network)(nil)

// New returns an empty UDP network on loopback.
func New() *Network { return &Network{} }

// Attach creates a station on an OS-assigned loopback port and makes it a
// peer of every station previously attached (and vice versa).
func (n *Network) Attach(name string) (netw.Station, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	s, err := NewStation(Config{ID: netw.NodeID(len(n.stations)), Name: name})
	if err != nil {
		return nil, err
	}
	for _, other := range n.stations {
		other.AddPeer(s.id, s.Addr())
		s.AddPeer(other.id, other.Addr())
	}
	n.stations = append(n.stations, s)
	return s, nil
}

// Close shuts every station down.
func (n *Network) Close() {
	n.mu.Lock()
	stations := make([]*Station, len(n.stations))
	copy(stations, n.stations)
	n.mu.Unlock()
	for _, s := range stations {
		_ = s.Close()
	}
}

// Config configures a Station.
type Config struct {
	// ID is this station's node id; must be unique across the peer set.
	ID netw.NodeID
	// Name is used in diagnostics.
	Name string
	// Bind is the UDP address to listen on; empty means an OS-assigned
	// loopback port.
	Bind string
	// Peers maps node ids to UDP addresses. Peers may also be added later
	// with AddPeer.
	Peers map[netw.NodeID]string
}

// Station is one UDP endpoint implementing netw.Station.
type Station struct {
	id   netw.NodeID
	name string
	conn *net.UDPConn
	wg   sync.WaitGroup

	mu      sync.Mutex
	peers   map[netw.NodeID]*net.UDPAddr
	subs    map[netw.ChannelID]bool
	handler netw.Handler
	closed  bool
}

var _ netw.Station = (*Station)(nil)

// NewStation binds a UDP socket and starts its receive loop.
func NewStation(cfg Config) (*Station, error) {
	bind := cfg.Bind
	if bind == "" {
		bind = "127.0.0.1:0"
	}
	addr, err := net.ResolveUDPAddr("udp", bind)
	if err != nil {
		return nil, fmt.Errorf("udpnet: resolving %q: %w", bind, err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("udpnet: listening on %q: %w", bind, err)
	}
	s := &Station{
		id:    cfg.ID,
		name:  cfg.Name,
		conn:  conn,
		peers: make(map[netw.NodeID]*net.UDPAddr),
		subs:  make(map[netw.ChannelID]bool),
	}
	for id, a := range cfg.Peers {
		if err := s.AddPeer(id, a); err != nil {
			_ = conn.Close()
			return nil, err
		}
	}
	s.wg.Add(1)
	go s.recvLoop()
	return s, nil
}

// Addr returns the station's bound UDP address.
func (s *Station) Addr() string { return s.conn.LocalAddr().String() }

// AddPeer registers (or updates) a peer's address.
func (s *Station) AddPeer(id netw.NodeID, addr string) error {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("udpnet: resolving peer %d at %q: %w", id, addr, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.peers[id] = ua
	return nil
}

// ID implements netw.Station.
func (s *Station) ID() netw.NodeID { return s.id }

// SetHandler implements netw.Station.
func (s *Station) SetHandler(h netw.Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handler = h
}

// Subscribe implements netw.Station.
func (s *Station) Subscribe(ch netw.ChannelID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.subs[ch] = true
}

// Unsubscribe implements netw.Station.
func (s *Station) Unsubscribe(ch netw.ChannelID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.subs, ch)
}

// Send implements netw.Station.
func (s *Station) Send(dst netw.NodeID, payload []byte) error {
	if len(payload) > netw.MTU {
		return fmt.Errorf("%w: %d bytes", netw.ErrFrameTooLarge, len(payload))
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return netw.ErrClosed
	}
	peer := s.peers[dst]
	s.mu.Unlock()
	if peer == nil {
		return nil // unknown destination: the frame vanishes, as on Ethernet
	}
	buf := s.frame(typeUnicast, 0, payload)
	_, err := s.conn.WriteToUDP(buf, peer)
	if err != nil && !errors.Is(err, net.ErrClosed) {
		return fmt.Errorf("udpnet: send: %w", err)
	}
	return nil
}

// Multicast implements netw.Station: fan-out unicast to every peer;
// receivers filter by channel.
func (s *Station) Multicast(ch netw.ChannelID, payload []byte) error {
	if len(payload) > netw.MTU {
		return fmt.Errorf("%w: %d bytes", netw.ErrFrameTooLarge, len(payload))
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return netw.ErrClosed
	}
	peers := make([]*net.UDPAddr, 0, len(s.peers))
	for id, p := range s.peers {
		if id == s.id {
			continue
		}
		peers = append(peers, p)
	}
	s.mu.Unlock()
	buf := s.frame(typeMulticast, ch, payload)
	for _, p := range peers {
		if _, err := s.conn.WriteToUDP(buf, p); err != nil {
			if errors.Is(err, net.ErrClosed) {
				return netw.ErrClosed
			}
			// Unreachable peer: datagram semantics, keep going.
		}
	}
	return nil
}

func (s *Station) frame(typ byte, ch netw.ChannelID, payload []byte) []byte {
	buf := make([]byte, frameHeader+len(payload))
	buf[0] = typ
	binary.BigEndian.PutUint32(buf[1:], uint32(s.id))
	binary.BigEndian.PutUint32(buf[5:], uint32(ch))
	copy(buf[frameHeader:], payload)
	return buf
}

// Close implements netw.Station.
func (s *Station) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.conn.Close()
	s.wg.Wait()
	return err
}

func (s *Station) recvLoop() {
	defer s.wg.Done()
	buf := make([]byte, netw.MTU+frameHeader)
	for {
		n, _, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		if n < frameHeader {
			continue
		}
		typ := buf[0]
		src := netw.NodeID(binary.BigEndian.Uint32(buf[1:]))
		ch := netw.ChannelID(binary.BigEndian.Uint32(buf[5:]))
		payload := make([]byte, n-frameHeader)
		copy(payload, buf[frameHeader:n])

		s.mu.Lock()
		h := s.handler
		closed := s.closed
		subscribed := s.subs[ch]
		s.mu.Unlock()
		if h == nil || closed {
			continue
		}
		switch typ {
		case typeUnicast:
			h(netw.Frame{Src: src, Dst: s.id, Payload: payload})
		case typeMulticast:
			if subscribed {
				h(netw.Frame{Src: src, Dst: netw.Broadcast, Channel: ch, Payload: payload})
			}
		}
	}
}
