package udpnet

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"amoeba/internal/netw"
)

type sink struct {
	mu     sync.Mutex
	frames []netw.Frame
	notify chan struct{}
}

func newSink(s netw.Station) *sink {
	k := &sink{notify: make(chan struct{}, 256)}
	s.SetHandler(func(f netw.Frame) {
		k.mu.Lock()
		k.frames = append(k.frames, f)
		k.mu.Unlock()
		select {
		case k.notify <- struct{}{}:
		default:
		}
	})
	return k
}

func (k *sink) waitFor(t *testing.T, n int) []netw.Frame {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		k.mu.Lock()
		if len(k.frames) >= n {
			out := make([]netw.Frame, len(k.frames))
			copy(out, k.frames)
			k.mu.Unlock()
			return out
		}
		k.mu.Unlock()
		select {
		case <-k.notify:
		case <-deadline:
			t.Fatalf("timed out waiting for %d frames", n)
		}
	}
}

func (k *sink) count() int {
	k.mu.Lock()
	defer k.mu.Unlock()
	return len(k.frames)
}

func TestUnicastOverUDP(t *testing.T) {
	n := New()
	defer n.Close()
	a, err := n.Attach("a")
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	b, err := n.Attach("b")
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	kb := newSink(b)
	if err := a.Send(b.ID(), []byte("over-udp")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	frames := kb.waitFor(t, 1)
	if frames[0].Src != a.ID() || !bytes.Equal(frames[0].Payload, []byte("over-udp")) {
		t.Fatalf("frame = %+v", frames[0])
	}
}

func TestMulticastFiltersByChannel(t *testing.T) {
	n := New()
	defer n.Close()
	a, _ := n.Attach("a")
	b, _ := n.Attach("b")
	c, _ := n.Attach("c")
	kb, kc := newSink(b), newSink(c)
	const ch netw.ChannelID = 9
	b.Subscribe(ch)
	// c does not subscribe: the datagram arrives but is filtered.
	if err := a.Multicast(ch, []byte("mc")); err != nil {
		t.Fatalf("Multicast: %v", err)
	}
	frames := kb.waitFor(t, 1)
	if frames[0].Channel != ch || frames[0].Dst != netw.Broadcast {
		t.Fatalf("frame = %+v", frames[0])
	}
	time.Sleep(50 * time.Millisecond)
	if kc.count() != 0 {
		t.Fatal("unsubscribed station delivered a multicast")
	}
}

func TestSendToUnknownPeerVanishes(t *testing.T) {
	n := New()
	defer n.Close()
	a, _ := n.Attach("a")
	if err := a.Send(42, []byte("x")); err != nil {
		t.Fatalf("send to unknown peer errored: %v", err)
	}
}

func TestOversizeRejected(t *testing.T) {
	n := New()
	defer n.Close()
	a, _ := n.Attach("a")
	if err := a.Send(0, make([]byte, netw.MTU+1)); err == nil {
		t.Fatal("oversize send accepted")
	}
	if err := a.Multicast(1, make([]byte, netw.MTU+1)); err == nil {
		t.Fatal("oversize multicast accepted")
	}
}

func TestClosedStationFailsSends(t *testing.T) {
	n := New()
	defer n.Close()
	a, _ := n.Attach("a")
	b, _ := n.Attach("b")
	if err := b.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := b.Send(a.ID(), []byte("x")); err == nil {
		t.Fatal("send on closed station accepted")
	}
	if err := b.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}

func TestCrossProcessStyleStaticPeers(t *testing.T) {
	// Build two stations the way separate processes would: explicit
	// binds and static peer tables.
	s1, err := NewStation(Config{ID: 0, Name: "p1"})
	if err != nil {
		t.Fatalf("NewStation: %v", err)
	}
	defer s1.Close()
	s2, err := NewStation(Config{ID: 1, Name: "p2", Peers: map[netw.NodeID]string{0: s1.Addr()}})
	if err != nil {
		t.Fatalf("NewStation: %v", err)
	}
	defer s2.Close()
	if err := s1.AddPeer(1, s2.Addr()); err != nil {
		t.Fatalf("AddPeer: %v", err)
	}
	k1 := newSink(s1)
	if err := s2.Send(0, []byte("static")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	frames := k1.waitFor(t, 1)
	if !bytes.Equal(frames[0].Payload, []byte("static")) {
		t.Fatalf("payload = %q", frames[0].Payload)
	}
}

// TestGroupProtocolOverUDP runs the full public API over real UDP sockets:
// the complete stack (group protocol → FLIP → UDP) exchanging totally
// ordered messages through the kernel's loopback interface.
func TestGroupProtocolOverUDP(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	net := New()
	defer net.Close()

	groups, err := formUDPGroup(ctx, t, net, 3)
	if err != nil {
		t.Fatalf("forming group: %v", err)
	}
	for i, g := range groups {
		if err := g.send(ctx, []byte(fmt.Sprintf("udp-%d", i))); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	// All members deliver the same three messages in the same order.
	var ref []string
	for i, g := range groups {
		var got []string
		for len(got) < 3 {
			payload, err := g.receiveData(ctx)
			if err != nil {
				t.Fatalf("receive at %d: %v", i, err)
			}
			got = append(got, payload)
		}
		if i == 0 {
			ref = got
			continue
		}
		for j := range ref {
			if got[j] != ref[j] {
				t.Fatalf("member %d diverges at %d: %q vs %q", i, j, got[j], ref[j])
			}
		}
	}
}
