package udpnet

import (
	"context"
	"fmt"
	"sync"
	"time"

	"amoeba/internal/core"
	"amoeba/internal/flip"
	"amoeba/internal/sim"
)

// udpMember is one group member running the full stack over a UDP station.
type udpMember struct {
	ep *core.Endpoint

	mu   sync.Mutex
	data []string
	note chan struct{}
}

func (m *udpMember) send(ctx context.Context, payload []byte) error {
	done := make(chan error, 1)
	m.ep.Send(payload, func(e error) { done <- e })
	select {
	case e := <-done:
		return e
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (m *udpMember) receiveData(ctx context.Context) (string, error) {
	for {
		m.mu.Lock()
		if len(m.data) > 0 {
			out := m.data[0]
			m.data = m.data[1:]
			m.mu.Unlock()
			return out, nil
		}
		m.mu.Unlock()
		select {
		case <-m.note:
		case <-ctx.Done():
			return "", ctx.Err()
		}
	}
}

type testingT interface {
	Fatalf(format string, args ...any)
	Cleanup(func())
}

// formUDPGroup builds an n-member group over real UDP sockets.
func formUDPGroup(ctx context.Context, t testingT, net *Network, n int) ([]*udpMember, error) {
	groupAddr := flip.AddressForName("udp-group")
	members := make([]*udpMember, 0, n)
	for i := 0; i < n; i++ {
		station, err := net.Attach(fmt.Sprintf("udp-%d", i))
		if err != nil {
			return nil, err
		}
		stack := flip.NewStack(flip.Config{
			Station:        station,
			Clock:          sim.NewRealClock(),
			LocateInterval: 10 * time.Millisecond,
		})
		m := &udpMember{note: make(chan struct{}, 256)}
		cfg := core.Config{
			Group:         groupAddr,
			Self:          stack.AllocAddress(),
			Clock:         sim.NewRealClock(),
			RetryInterval: 25 * time.Millisecond,
			OnDeliver: func(d core.Delivery) {
				if d.Kind != core.KindData {
					return
				}
				m.mu.Lock()
				m.data = append(m.data, string(d.Payload))
				m.mu.Unlock()
				select {
				case m.note <- struct{}{}:
				default:
				}
			},
		}
		tr := core.NewFLIPTransport(stack, cfg.Self, groupAddr)
		cfg.Transport = tr
		if i == 0 {
			m.ep, err = core.NewCreator(cfg)
			if err != nil {
				return nil, err
			}
			tr.Bind(m.ep)
			m.ep.Start()
		} else {
			done := make(chan error, 1)
			m.ep, err = core.NewJoiner(cfg, func(e error) { done <- e })
			if err != nil {
				return nil, err
			}
			tr.Bind(m.ep)
			m.ep.Start()
			select {
			case e := <-done:
				if e != nil {
					return nil, fmt.Errorf("join %d: %w", i, e)
				}
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		t.Cleanup(m.ep.Close)
		members = append(members, m)
	}
	return members, nil
}
