// Package netsim implements netw.Network as a deterministic discrete-event
// model of the paper's experimental substrate: a single 10 Mbit/s Ethernet
// segment with CSMA/CD contention, Lance-style network interfaces with a
// 32-frame receive ring, and single-CPU stations whose per-layer processing
// costs follow the paper's Table 3 breakdown for a 20-MHz MC68030.
//
// Protocol code runs unmodified on top: frame handlers and timers execute on
// the simulation goroutine, and the layers charge their processing time
// through the cost.Meter interface, so a station's CPU is genuinely busy
// while it processes a message. That serialisation is what reproduces the
// paper's sequencer-bound throughput ceiling, the receive-ring overflow
// collapse for large messages, and the collision-driven decline with many
// parallel groups.
package netsim

import (
	"fmt"
	"time"

	"amoeba/internal/cost"
	"amoeba/internal/netw"
	"amoeba/internal/sim"
)

// Network is a simulated Ethernet segment.
type Network struct {
	engine   *sim.Engine
	model    CostModel
	stations []*Station

	// Medium state (CSMA/CD).
	busyUntil time.Duration // carrier present until
	active    []*txAttempt  // transmissions in flight (≥2 ⇒ collision)
	txDone    *sim.Event    // completion event of the active transmission

	// Statistics.
	collisions    uint64
	wireBusy      time.Duration
	framesOnWire  uint64
	bytesOnWire   uint64
	abortedFrames uint64
}

var _ netw.Network = (*Network)(nil)

type txAttempt struct {
	station  *Station
	frame    netw.Frame
	start    time.Duration
	attempts int
}

// New returns a Network driven by engine under the given cost model.
func New(engine *sim.Engine, model CostModel) *Network {
	return &Network{engine: engine, model: model}
}

// Engine returns the driving simulation engine.
func (n *Network) Engine() *sim.Engine { return n.engine }

// Model returns the cost model in effect.
func (n *Network) Model() CostModel { return n.model }

// Collisions reports the number of collision events on the medium.
func (n *Network) Collisions() uint64 { return n.collisions }

// Utilization reports the fraction of elapsed virtual time the medium
// carried a successful frame.
func (n *Network) Utilization() float64 {
	if n.engine.Now() == 0 {
		return 0
	}
	return float64(n.wireBusy) / float64(n.engine.Now())
}

// BytesOnWire reports total successfully transmitted bytes, headers included.
func (n *Network) BytesOnWire() uint64 { return n.bytesOnWire }

// AbortedFrames reports frames abandoned after MaxAttempts collisions
// (Ethernet "excessive collision" aborts).
func (n *Network) AbortedFrames() uint64 { return n.abortedFrames }

// Attach implements netw.Network.
func (n *Network) Attach(name string) (netw.Station, error) {
	return n.AttachStation(name), nil
}

// AttachStation creates a station and returns its concrete type, giving
// experiments access to per-station statistics and the virtual CPU clock.
func (n *Network) AttachStation(name string) *Station {
	s := &Station{
		net:  n,
		id:   netw.NodeID(len(n.stations)),
		name: name,
		subs: make(map[netw.ChannelID]bool),
	}
	n.stations = append(n.stations, s)
	return s
}

// send enqueues a frame on the station's transmit queue. Like a real NIC,
// each station contends for the medium with one frame at a time; the rest
// wait in FIFO order. readyAt is the sender CPU time when the frame reaches
// the NIC.
func (n *Network) send(s *Station, f netw.Frame, readyAt time.Duration) {
	at := &txAttempt{station: s, frame: f, start: readyAt}
	s.txq = append(s.txq, at)
	if len(s.txq) == 1 {
		n.engine.At(readyAt, func() { n.attempt(at) })
	}
}

// txNext starts the station's next queued frame after the current one ends.
func (n *Network) txNext(s *Station) {
	s.txq = s.txq[1:]
	if len(s.txq) == 0 {
		return
	}
	next := s.txq[0]
	at := next.start // NIC-ready time
	if now := n.engine.Now(); at < now {
		at = now
	}
	n.engine.At(at, func() { n.attempt(next) })
}

// attempt runs CSMA/CD carrier sense for one queued frame.
func (n *Network) attempt(at *txAttempt) {
	now := n.engine.Now()
	if len(n.active) > 0 {
		head := n.active[0]
		if now < head.start+n.model.CollisionWindow && head.station != at.station {
			// Within the vulnerable window of an in-progress
			// transmission — the carrier has not propagated yet:
			// collision.
			n.collide(at, now)
			return
		}
		// Carrier sensed: defer until the medium goes idle, with a
		// little per-station skew so boundary pile-ups usually
		// serialise (and occasionally still collide).
		n.engine.At(n.deferTime(at), func() { n.attempt(at) })
		return
	}
	if now < n.busyUntil {
		// Inter-frame gap or jam residue.
		n.engine.At(n.deferTime(at), func() { n.attempt(at) })
		return
	}
	// Medium idle: start transmitting.
	at.start = now
	n.active = append(n.active, at)
	ft := n.model.FrameTime(len(at.frame.Payload))
	n.busyUntil = now + ft + n.model.InterFrameGap
	n.txDone = n.engine.At(now+ft, func() { n.complete(at, ft) })
}

// deferTime is the moment a deferring frame re-attempts: end of the busy
// period plus sensing skew. The skew window widens linearly with the frame's
// collision history, preserving some of the separation binary exponential
// backoff established — without any widening, every deferral would collapse
// contenders back onto the same boundary instant and collision chains would
// run to the 16-attempt abort under synchronized bursts; exponential widening
// would let a busy station capture the medium and starve collided peers.
func (n *Network) deferTime(at *txAttempt) time.Duration {
	jitter := time.Duration(0)
	if n.model.DeferJitter > 0 {
		mult := 1 + at.attempts
		if mult > 8 {
			mult = 8
		}
		window := time.Duration(mult) * n.model.DeferJitter
		jitter = time.Duration(n.engine.Rand().Int63n(int64(window)))
	}
	return n.busyUntil + jitter
}

// collide aborts the in-flight transmission(s) and backs everyone off.
func (n *Network) collide(at *txAttempt, now time.Duration) {
	n.collisions++
	jamEnd := now + n.model.SlotTime
	if n.busyUntil < jamEnd {
		n.busyUntil = jamEnd
	}
	if n.txDone != nil {
		n.txDone.Stop()
		n.txDone = nil
	}
	victims := append(n.active, at)
	n.active = nil
	for _, v := range victims {
		v.attempts++
		if v.attempts >= n.model.MaxAttempts {
			// Excessive collisions: the frame is dropped and the
			// station moves on to its next one.
			n.abortedFrames++
			n.txNext(v.station)
			continue
		}
		exp := v.attempts
		if exp > n.model.MaxBackoffExp {
			exp = n.model.MaxBackoffExp
		}
		slots := n.engine.Rand().Intn(1 << exp)
		retry := jamEnd + time.Duration(slots)*n.model.SlotTime
		v := v
		n.engine.At(retry, func() { n.attempt(v) })
	}
}

// complete delivers a successfully transmitted frame.
func (n *Network) complete(at *txAttempt, ft time.Duration) {
	n.active = nil
	n.txDone = nil
	n.txNext(at.station)
	n.wireBusy += ft
	n.framesOnWire++
	wireBytes := len(at.frame.Payload) + n.model.FrameOverheadBytes
	if wireBytes < n.model.MinFrameBytes {
		wireBytes = n.model.MinFrameBytes
	}
	n.bytesOnWire += uint64(wireBytes)

	f := at.frame
	if f.Dst == netw.Broadcast {
		for _, s := range n.stations {
			if s.id == f.Src || s.closed || !s.subs[f.Channel] {
				continue
			}
			s.receive(f)
		}
		return
	}
	if int(f.Dst) >= 0 && int(f.Dst) < len(n.stations) {
		dst := n.stations[f.Dst]
		if !dst.closed {
			dst.receive(f)
		}
	}
}

// Station is one simulated machine: a Lance NIC plus a single CPU.
type Station struct {
	net     *Network
	id      netw.NodeID
	name    string
	handler netw.Handler
	subs    map[netw.ChannelID]bool
	closed  bool

	// CPU: busy until cpuFree; frames queue in the receive ring while the
	// CPU works.
	cpuFree    time.Duration
	ring       []netw.Frame
	processing bool

	// Transmit queue: the NIC contends for the medium with the head
	// frame only.
	txq []*txAttempt

	// Statistics.
	framesIn   uint64
	framesOut  uint64
	interrupts uint64
	ringDrops  uint64
	cpuBusy    time.Duration
}

var (
	_ netw.Station = (*Station)(nil)
	_ cost.Meter   = (*Station)(nil)
)

// ID implements netw.Station.
func (s *Station) ID() netw.NodeID { return s.id }

// SetHandler implements netw.Station.
func (s *Station) SetHandler(h netw.Handler) { s.handler = h }

// Subscribe implements netw.Station.
func (s *Station) Subscribe(ch netw.ChannelID) { s.subs[ch] = true }

// Unsubscribe implements netw.Station.
func (s *Station) Unsubscribe(ch netw.ChannelID) { delete(s.subs, ch) }

// Now returns the station's effective virtual time: the engine clock, pushed
// forward by any processing charged during the current event. Measurements
// of protocol completion must use this clock so that charged CPU time is
// visible in delays.
func (s *Station) Now() time.Duration {
	if s.cpuFree > s.net.engine.Now() {
		return s.cpuFree
	}
	return s.net.engine.Now()
}

// Charge implements cost.Meter: protocol layers account their processing
// here, extending the station's CPU busy period.
func (s *Station) Charge(k cost.Kind, bytes int) {
	s.charge(s.net.model.chargeFor(k, bytes))
}

func (s *Station) charge(d time.Duration) {
	now := s.net.engine.Now()
	if s.cpuFree < now {
		s.cpuFree = now
	}
	s.cpuFree += d
	s.cpuBusy += d
}

// RingDrops reports frames lost to receive-ring overflow.
func (s *Station) RingDrops() uint64 { return s.ringDrops }

// Interrupts reports frames accepted into the receive ring (one interrupt
// each).
func (s *Station) Interrupts() uint64 { return s.interrupts }

// FramesOut reports frames this station put on the wire.
func (s *Station) FramesOut() uint64 { return s.framesOut }

// CPUBusy reports the total CPU time charged to this station.
func (s *Station) CPUBusy() time.Duration { return s.cpuBusy }

// Send implements netw.Station: charge the driver, then contend for the
// medium.
func (s *Station) Send(dst netw.NodeID, payload []byte) error {
	return s.transmit(netw.Frame{Src: s.id, Dst: dst, Payload: payload})
}

// Multicast implements netw.Station.
func (s *Station) Multicast(ch netw.ChannelID, payload []byte) error {
	// Setting up the Lance multicast send costs a little per destination
	// (the paper's ≈4 µs/member).
	nsubs := 0
	for _, o := range s.net.stations {
		if o.id != s.id && !o.closed && o.subs[ch] {
			nsubs++
		}
	}
	s.charge(time.Duration(nsubs) * s.net.model.PerMemberSend)
	return s.transmit(netw.Frame{Src: s.id, Dst: netw.Broadcast, Channel: ch, Payload: payload})
}

func (s *Station) transmit(f netw.Frame) error {
	if len(f.Payload) > netw.MTU {
		return fmt.Errorf("%w: %d bytes", netw.ErrFrameTooLarge, len(f.Payload))
	}
	if s.closed {
		return netw.ErrClosed
	}
	// The simulator owns frame buffers from here on; copy so protocol
	// buffer reuse cannot corrupt in-flight frames.
	p := make([]byte, len(f.Payload))
	copy(p, f.Payload)
	f.Payload = p

	s.charge(s.net.model.SendDriver + time.Duration(len(f.Payload))*s.net.model.SendCopyPerByte)
	s.framesOut++
	s.net.send(s, f, s.cpuFree)
	return nil
}

// Close implements netw.Station: the machine crashes. In-flight and queued
// frames are lost.
func (s *Station) Close() error {
	s.closed = true
	s.ring = nil
	return nil
}

// receive is called by the network when a frame arrives at the NIC.
func (s *Station) receive(f netw.Frame) {
	if len(s.ring) >= s.net.model.RingSize {
		// Lance overflow: silently dropped; the sender's protocol
		// timers will eventually notice.
		s.ringDrops++
		return
	}
	s.ring = append(s.ring, f)
	s.interrupts++
	s.framesIn++
	if !s.processing {
		s.processing = true
		s.scheduleProcess()
	}
}

func (s *Station) scheduleProcess() {
	at := s.net.engine.Now()
	if s.cpuFree > at {
		at = s.cpuFree
	}
	s.net.engine.At(at, s.processNext)
}

// processNext pops one frame from the ring and runs the full receive path:
// interrupt, driver, copy, then the protocol handler (which adds its own
// charges).
func (s *Station) processNext() {
	if s.closed || len(s.ring) == 0 {
		s.processing = false
		return
	}
	f := s.ring[0]
	s.ring = s.ring[1:]
	m := s.net.model
	s.charge(m.RecvInterrupt + m.RecvDriver + time.Duration(len(f.Payload))*m.RecvCopyPerByte)
	if s.handler != nil {
		s.handler(f)
	}
	if len(s.ring) > 0 {
		s.scheduleProcess()
		return
	}
	s.processing = false
}
