package netsim

import (
	"time"

	"amoeba/internal/cost"
)

// CostModel parameterises the simulated hardware: the 10 Mbit/s Ethernet,
// the Lance NIC, and the per-layer processing costs of a 20-MHz MC68030
// running the Amoeba kernel. DefaultCostModel reproduces the constants the
// paper reports (Table 3 and §4); experiments may scale fields to model
// different hardware (e.g. the user-space ablation).
type CostModel struct {
	// BitRate is the wire speed in bits per second.
	BitRate int
	// FrameOverheadBytes is added to every frame on the wire: the paper
	// counts 116 header bytes (14 Ethernet + 2 flow control + 40 FLIP +
	// 28 group + 32 Amoeba user header).
	FrameOverheadBytes int
	// MinFrameBytes is the Ethernet minimum frame size.
	MinFrameBytes int
	// SlotTime is the Ethernet backoff quantum (51.2 µs at 10 Mbit/s).
	SlotTime time.Duration
	// CollisionWindow is the vulnerable period after a transmission
	// starts during which another station has not yet sensed carrier: the
	// propagation delay of the segment (a few µs on one LAN, far less
	// than the worst-case slot time).
	CollisionWindow time.Duration
	// DeferJitter spreads stations' medium re-acquisition after a busy
	// period, modelling transceiver and interframe processing skew.
	// Without it every frame boundary would be a guaranteed collision.
	DeferJitter time.Duration
	// InterFrameGap separates back-to-back frames (9.6 µs).
	InterFrameGap time.Duration
	// MaxBackoffExp caps the binary exponential backoff exponent (10).
	MaxBackoffExp int
	// MaxAttempts aborts a frame after this many collisions (16).
	MaxAttempts int
	// RingSize is the Lance receive ring: 32 frames buffered before the
	// interface overflows and drops.
	RingSize int

	// Receive path, charged per frame on the receiving CPU.
	RecvInterrupt   time.Duration // taking the interrupt
	RecvDriver      time.Duration // Lance driver input processing
	RecvCopyPerByte time.Duration // Lance buffer → kernel (history) copy

	// Send path, charged per frame on the sending CPU.
	SendDriver      time.Duration // driver output + Lance setup
	SendCopyPerByte time.Duration // kernel buffer → Lance copy
	// PerMemberSend models the per-destination cost of a multicast send
	// (≈4 µs per member in the paper's Figure 1 extrapolation).
	PerMemberSend time.Duration

	// Protocol layers, charged via cost.Meter by internal/flip and
	// internal/core.
	FLIPIn          time.Duration // FLIP input, per packet
	FLIPOut         time.Duration // FLIP output, per packet
	GroupIn         time.Duration // group protocol input, per data message
	GroupOut        time.Duration // group protocol output, per data message
	CtrlIn          time.Duration // group protocol input, per control message
	UserSend        time.Duration // context switch + syscall into SendToGroup
	UserSendPerByte time.Duration // user space → kernel copy
	UserDeliver     time.Duration // wake + context switch out of ReceiveFromGroup
	UserDeliverNext time.Duration // follow-on message in the same wakeup (queue pop, no context switch)
	UserDelPerByte  time.Duration // history buffer → user space copy

	// ProtocolFactor scales the FLIP/group layer charges. 1.0 models the
	// paper's in-kernel implementation; >1 models a user-space
	// implementation's slower protocol processing (Oey et al., §5).
	ProtocolFactor float64
	// UserSpaceCrossing is an extra per-charge cost at every protocol
	// layer boundary, modelling the user/kernel crossings a user-space
	// protocol implementation pays on each packet. Zero for the in-kernel
	// implementation.
	UserSpaceCrossing time.Duration
}

// DefaultCostModel returns the model calibrated against the paper's
// measurements: 0-byte PB delay ≈ 2.7 ms for a group of 2 (Table 3 total
// 2740 µs, group layer ≈ 740 µs), sequencer-bound throughput ≈ 815 msg/s,
// ≈ 600 µs per resilience acknowledgement, ≈ 4 µs additional delay per
// member, and ≈ +20 ms for an 8000-byte PB send.
func DefaultCostModel() CostModel {
	return CostModel{
		BitRate:            10_000_000,
		FrameOverheadBytes: 116,
		MinFrameBytes:      64,
		SlotTime:           51200 * time.Nanosecond,
		CollisionWindow:    5 * time.Microsecond,
		DeferJitter:        40 * time.Microsecond,
		InterFrameGap:      9600 * time.Nanosecond,
		MaxBackoffExp:      10,
		MaxAttempts:        16,
		RingSize:           32,

		RecvInterrupt:   100 * time.Microsecond,
		RecvDriver:      100 * time.Microsecond,
		RecvCopyPerByte: 100 * time.Nanosecond,

		SendDriver:      100 * time.Microsecond,
		SendCopyPerByte: 100 * time.Nanosecond,
		PerMemberSend:   4 * time.Microsecond,

		FLIPIn:          110 * time.Microsecond,
		FLIPOut:         110 * time.Microsecond,
		GroupIn:         190 * time.Microsecond,
		GroupOut:        180 * time.Microsecond,
		CtrlIn:          150 * time.Microsecond,
		UserSend:        410 * time.Microsecond,
		UserSendPerByte: 80 * time.Nanosecond,
		UserDeliver:     380 * time.Microsecond,
		UserDeliverNext: 60 * time.Microsecond,
		UserDelPerByte:  110 * time.Nanosecond,

		ProtocolFactor: 1.0,
	}
}

// FrameTime returns the wire occupancy of a frame with the given payload
// size, including header overhead and the minimum frame size.
func (m CostModel) FrameTime(payloadBytes int) time.Duration {
	bytes := payloadBytes + m.FrameOverheadBytes
	if bytes < m.MinFrameBytes {
		bytes = m.MinFrameBytes
	}
	return time.Duration(int64(bytes) * 8 * int64(time.Second) / int64(m.BitRate))
}

// chargeFor maps a protocol-layer charge to CPU time under this model.
func (m CostModel) chargeFor(k cost.Kind, bytes int) time.Duration {
	f := m.ProtocolFactor
	if f == 0 {
		f = 1.0
	}
	scale := func(d time.Duration) time.Duration {
		return time.Duration(float64(d)*f) + m.UserSpaceCrossing
	}
	switch k {
	case cost.UserSend:
		return m.UserSend + time.Duration(bytes)*m.UserSendPerByte
	case cost.GroupOut:
		return scale(m.GroupOut)
	case cost.GroupIn:
		return scale(m.GroupIn)
	case cost.CtrlIn:
		return scale(m.CtrlIn)
	case cost.FLIPOut:
		return scale(m.FLIPOut)
	case cost.FLIPIn:
		return scale(m.FLIPIn)
	case cost.UserDeliver:
		return m.UserDeliver + time.Duration(bytes)*m.UserDelPerByte
	case cost.UserDeliverNext:
		return m.UserDeliverNext + time.Duration(bytes)*m.UserDelPerByte
	default:
		return 0
	}
}
