package netsim

import (
	"testing"
	"time"

	"amoeba/internal/cost"
	"amoeba/internal/netw"
	"amoeba/internal/sim"
)

func newNet(t *testing.T) (*sim.Engine, *Network) {
	t.Helper()
	e := sim.NewEngine(7)
	return e, New(e, DefaultCostModel())
}

func TestFrameTime(t *testing.T) {
	m := DefaultCostModel()
	// 0-byte payload: 116 header bytes → 92.8 µs at 10 Mbit/s.
	got := m.FrameTime(0)
	want := 92800 * time.Nanosecond
	if got != want {
		t.Fatalf("FrameTime(0) = %v, want %v", got, want)
	}
	// Minimum frame applies below 64 bytes total.
	small := CostModel{BitRate: 10_000_000, FrameOverheadBytes: 10, MinFrameBytes: 64}
	if small.FrameTime(0) != small.FrameTime(50) {
		t.Fatal("minimum frame size not applied")
	}
	if small.FrameTime(100) <= small.FrameTime(0) {
		t.Fatal("frame time not increasing with payload")
	}
}

func TestUnicastDeliveryTiming(t *testing.T) {
	e, n := newNet(t)
	a := n.AttachStation("a")
	b := n.AttachStation("b")
	var deliveredAt time.Duration
	b.SetHandler(func(f netw.Frame) { deliveredAt = e.Now() })
	a.SetHandler(func(netw.Frame) {})

	e.After(0, func() {
		if err := a.Send(b.ID(), []byte{1, 2, 3}); err != nil {
			t.Errorf("Send: %v", err)
		}
	})
	e.Run()
	if deliveredAt == 0 {
		t.Fatal("frame not delivered")
	}
	m := n.Model()
	// Delivery must be at least driver + wire time after the send.
	min := m.SendDriver + m.FrameTime(3)
	if deliveredAt < min {
		t.Fatalf("delivered at %v, want ≥ %v", deliveredAt, min)
	}
}

func TestChargeExtendsStationClock(t *testing.T) {
	e, n := newNet(t)
	s := n.AttachStation("s")
	e.After(0, func() {
		before := s.Now()
		s.Charge(cost.GroupIn, 0)
		after := s.Now()
		if after <= before {
			t.Error("Charge did not advance station clock")
		}
		if got := after - before; got != n.Model().GroupIn {
			t.Errorf("charge = %v, want %v", got, n.Model().GroupIn)
		}
	})
	e.Run()
	if s.CPUBusy() != n.Model().GroupIn {
		t.Fatalf("CPUBusy = %v", s.CPUBusy())
	}
}

func TestProtocolFactorScalesCharges(t *testing.T) {
	e := sim.NewEngine(1)
	m := DefaultCostModel()
	m.ProtocolFactor = 2.0
	n := New(e, m)
	s := n.AttachStation("s")
	s.Charge(cost.GroupIn, 0)
	if s.CPUBusy() != 2*DefaultCostModel().GroupIn {
		t.Fatalf("CPUBusy = %v, want doubled GroupIn", s.CPUBusy())
	}
	// User-layer costs are not scaled: they are context switches, not
	// protocol processing.
	s2 := n.AttachStation("s2")
	s2.Charge(cost.UserSend, 0)
	if s2.CPUBusy() != DefaultCostModel().UserSend {
		t.Fatalf("UserSend scaled: %v", s2.CPUBusy())
	}
}

func TestCPUSerializesFrameProcessing(t *testing.T) {
	e, n := newNet(t)
	a := n.AttachStation("a")
	b := n.AttachStation("b")
	var times []time.Duration
	b.SetHandler(func(f netw.Frame) {
		b.Charge(cost.GroupIn, 0) // heavy per-frame processing
		times = append(times, b.Now())
	})
	e.After(0, func() {
		for i := 0; i < 5; i++ {
			_ = a.Send(b.ID(), []byte{byte(i)})
		}
	})
	e.Run()
	if len(times) != 5 {
		t.Fatalf("processed %d frames, want 5", len(times))
	}
	m := n.Model()
	perFrame := m.RecvInterrupt + m.RecvDriver + m.RecvCopyPerByte + m.GroupIn
	for i := 1; i < len(times); i++ {
		gap := times[i] - times[i-1]
		if gap < perFrame {
			t.Fatalf("frames %d,%d processed %v apart, want ≥ %v", i-1, i, gap, perFrame)
		}
	}
}

func TestRingOverflowDropsFrames(t *testing.T) {
	e := sim.NewEngine(1)
	m := DefaultCostModel()
	m.RingSize = 4
	// Make processing very slow so the ring certainly fills.
	m.GroupIn = 50 * time.Millisecond
	n := New(e, m)
	a := n.AttachStation("a")
	b := n.AttachStation("b")
	received := 0
	b.SetHandler(func(netw.Frame) {
		b.Charge(cost.GroupIn, 0)
		received++
	})
	e.After(0, func() {
		for i := 0; i < 20; i++ {
			_ = a.Send(b.ID(), []byte{byte(i)})
		}
	})
	e.Run()
	if b.RingDrops() == 0 {
		t.Fatal("expected ring drops")
	}
	if received+int(b.RingDrops()) != 20 {
		t.Fatalf("received %d + dropped %d != 20", received, b.RingDrops())
	}
}

func TestMulticastOnlySubscribersInterrupted(t *testing.T) {
	e, n := newNet(t)
	src := n.AttachStation("src")
	sub := n.AttachStation("sub")
	non := n.AttachStation("non")
	got := map[netw.NodeID]int{}
	handler := func(id netw.NodeID) netw.Handler {
		return func(netw.Frame) { got[id]++ }
	}
	sub.SetHandler(handler(sub.ID()))
	non.SetHandler(handler(non.ID()))
	const ch netw.ChannelID = 5
	sub.Subscribe(ch)
	src.Subscribe(ch) // sender never hears its own multicast

	e.After(0, func() { _ = src.Multicast(ch, []byte("x")) })
	e.Run()
	if got[sub.ID()] != 1 {
		t.Fatalf("subscriber got %d frames, want 1", got[sub.ID()])
	}
	if got[non.ID()] != 0 {
		t.Fatal("non-subscriber was interrupted")
	}
	if non.Interrupts() != 0 {
		t.Fatal("non-subscriber counted an interrupt")
	}
}

func TestCollisionsOccurWithConcurrentSenders(t *testing.T) {
	e, n := newNet(t)
	const stations = 10
	recv := n.AttachStation("recv")
	recv.SetHandler(func(netw.Frame) {})
	var senders []*Station
	for i := 0; i < stations; i++ {
		s := n.AttachStation("s")
		s.SetHandler(func(netw.Frame) {})
		senders = append(senders, s)
	}
	// Everyone transmits a burst starting at the same instant.
	e.After(0, func() {
		for _, s := range senders {
			for j := 0; j < 20; j++ {
				_ = s.Send(recv.ID(), make([]byte, 100))
			}
		}
	})
	e.Run()
	if n.Collisions() == 0 {
		t.Fatal("no collisions with 10 simultaneous senders")
	}
	// Every frame is accounted for: delivered, dropped at the ring, or
	// aborted after excessive collisions.
	total := recv.Interrupts() + recv.RingDrops() + n.AbortedFrames()
	if total != stations*20 {
		t.Fatalf("delivered %d + dropped %d + aborted %d, want %d",
			recv.Interrupts(), recv.RingDrops(), n.AbortedFrames(), stations*20)
	}
}

func TestUtilizationBounded(t *testing.T) {
	e, n := newNet(t)
	a := n.AttachStation("a")
	b := n.AttachStation("b")
	b.SetHandler(func(netw.Frame) {})
	e.After(0, func() {
		for i := 0; i < 100; i++ {
			_ = a.Send(b.ID(), make([]byte, 1000))
		}
	})
	e.Run()
	u := n.Utilization()
	if u <= 0 || u > 1 {
		t.Fatalf("utilization = %v", u)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() (time.Duration, uint64) {
		e := sim.NewEngine(99)
		n := New(e, DefaultCostModel())
		recv := n.AttachStation("recv")
		recv.SetHandler(func(netw.Frame) { recv.Charge(cost.GroupIn, 0) })
		for i := 0; i < 6; i++ {
			s := n.AttachStation("s")
			s.SetHandler(func(netw.Frame) {})
			e.After(0, func() {
				for j := 0; j < 30; j++ {
					_ = s.Send(recv.ID(), make([]byte, 200))
				}
			})
		}
		e.Run()
		return e.Now(), n.Collisions()
	}
	t1, c1 := run()
	t2, c2 := run()
	if t1 != t2 || c1 != c2 {
		t.Fatalf("nondeterministic: (%v,%d) vs (%v,%d)", t1, c1, t2, c2)
	}
}

func TestClosedStationStopsTraffic(t *testing.T) {
	e, n := newNet(t)
	a := n.AttachStation("a")
	b := n.AttachStation("b")
	delivered := 0
	b.SetHandler(func(netw.Frame) { delivered++ })
	e.After(0, func() {
		_ = b.Close()
		if err := b.Send(a.ID(), []byte("x")); err == nil {
			t.Error("send from closed station succeeded")
		}
		_ = a.Send(b.ID(), []byte("y"))
	})
	e.Run()
	if delivered != 0 {
		t.Fatal("closed station received a frame")
	}
}

func TestOversizeFrameRejected(t *testing.T) {
	e, n := newNet(t)
	a := n.AttachStation("a")
	_ = e
	if err := a.Send(1, make([]byte, netw.MTU+1)); err == nil {
		t.Fatal("oversize frame accepted")
	}
}

func TestPerMemberSendCost(t *testing.T) {
	e, n := newNet(t)
	src := n.AttachStation("src")
	const ch netw.ChannelID = 2
	const members = 8
	for i := 0; i < members; i++ {
		s := n.AttachStation("m")
		s.SetHandler(func(netw.Frame) {})
		s.Subscribe(ch)
	}
	e.After(0, func() {
		busyBefore := src.CPUBusy()
		_ = src.Multicast(ch, []byte("x"))
		extra := src.CPUBusy() - busyBefore
		base := n.Model().SendDriver + 1*n.Model().SendCopyPerByte
		want := base + members*n.Model().PerMemberSend
		if extra != want {
			t.Errorf("multicast charged %v, want %v", extra, want)
		}
	})
	e.Run()
}
