package rpc

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"amoeba/internal/flip"
	"amoeba/internal/netw/memnet"
	"amoeba/internal/sim"
)

func newStack(t *testing.T, net *memnet.Network) *flip.Stack {
	t.Helper()
	st, err := net.Attach("node")
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	return flip.NewStack(flip.Config{
		Station:        st,
		Clock:          sim.NewRealClock(),
		LocateInterval: 5 * time.Millisecond,
	})
}

func cfg(stack *flip.Stack) Config {
	return Config{
		Stack:         stack,
		Clock:         sim.NewRealClock(),
		RetryInterval: 15 * time.Millisecond,
		MaxRetries:    20,
	}
}

func TestCallReply(t *testing.T) {
	net := memnet.NewReliable()
	defer net.Close()
	ss, cs := newStack(t, net), newStack(t, net)
	srv, err := NewServer(cfg(ss), 0, func(req []byte) ([]byte, flip.Address) {
		return append([]byte("echo:"), req...), 0
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	defer srv.Close()
	cl, err := NewClient(cfg(cs))
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	defer cl.Close()

	reply, err := cl.Call(srv.Addr(), []byte("ping"))
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if string(reply) != "echo:ping" {
		t.Fatalf("reply = %q", reply)
	}
}

func TestCallSurvivesLoss(t *testing.T) {
	net := memnet.New(memnet.Config{DropRate: 0.3, Seed: 5})
	defer net.Close()
	ss, cs := newStack(t, net), newStack(t, net)
	srv, _ := NewServer(cfg(ss), 0, func(req []byte) ([]byte, flip.Address) {
		return req, 0
	})
	defer srv.Close()
	cl, _ := NewClient(cfg(cs))
	defer cl.Close()

	for i := 0; i < 20; i++ {
		req := []byte(fmt.Sprintf("r%d", i))
		reply, err := cl.Call(srv.Addr(), req)
		if err != nil {
			t.Fatalf("Call %d: %v", i, err)
		}
		if !bytes.Equal(reply, req) {
			t.Fatalf("reply %d = %q", i, reply)
		}
	}
}

func TestAtMostOnceExecution(t *testing.T) {
	// Heavy duplication: the server must execute each transaction once.
	net := memnet.New(memnet.Config{DupRate: 0.8, Seed: 9})
	defer net.Close()
	ss, cs := newStack(t, net), newStack(t, net)
	var mu sync.Mutex
	counts := map[string]int{}
	srv, _ := NewServer(cfg(ss), 0, func(req []byte) ([]byte, flip.Address) {
		mu.Lock()
		counts[string(req)]++
		mu.Unlock()
		return req, 0
	})
	defer srv.Close()
	cl, _ := NewClient(cfg(cs))
	defer cl.Close()

	for i := 0; i < 10; i++ {
		if _, err := cl.Call(srv.Addr(), []byte(fmt.Sprintf("tx%d", i))); err != nil {
			t.Fatalf("Call %d: %v", i, err)
		}
	}
	// Allow trailing duplicates to drain, then verify single execution.
	time.Sleep(50 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	for k, n := range counts {
		if n != 1 {
			t.Fatalf("request %q executed %d times", k, n)
		}
	}
}

func TestCallTimesOutWithoutServer(t *testing.T) {
	net := memnet.NewReliable()
	defer net.Close()
	cs := newStack(t, net)
	c := cfg(cs)
	c.MaxRetries = 3
	cl, _ := NewClient(c)
	defer cl.Close()
	if _, err := cl.Call(12345, []byte("void")); err == nil {
		t.Fatal("call into the void succeeded")
	}
}

func TestForwardRequest(t *testing.T) {
	net := memnet.NewReliable()
	defer net.Close()
	s1, s2, cs := newStack(t, net), newStack(t, net), newStack(t, net)
	// Backend actually answers.
	backend, _ := NewServer(cfg(s2), 0, func(req []byte) ([]byte, flip.Address) {
		return append([]byte("backend:"), req...), 0
	})
	defer backend.Close()
	// Frontend forwards everything to the backend.
	front, _ := NewServer(cfg(s1), 0, func(req []byte) ([]byte, flip.Address) {
		return nil, backend.Addr()
	})
	defer front.Close()
	cl, _ := NewClient(cfg(cs))
	defer cl.Close()

	reply, err := cl.Call(front.Addr(), []byte("work"))
	if err != nil {
		t.Fatalf("forwarded call: %v", err)
	}
	if string(reply) != "backend:work" {
		t.Fatalf("reply = %q", reply)
	}
}

func TestConcurrentCalls(t *testing.T) {
	net := memnet.NewReliable()
	defer net.Close()
	ss, cs := newStack(t, net), newStack(t, net)
	srv, _ := NewServer(cfg(ss), 0, func(req []byte) ([]byte, flip.Address) {
		return req, 0
	})
	defer srv.Close()
	cl, _ := NewClient(cfg(cs))
	defer cl.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := []byte(fmt.Sprintf("c%d", i))
			reply, err := cl.Call(srv.Addr(), req)
			if err == nil && !bytes.Equal(reply, req) {
				err = fmt.Errorf("reply %q for %q", reply, req)
			}
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestClosedClientFailsPending(t *testing.T) {
	net := memnet.NewReliable()
	defer net.Close()
	cs := newStack(t, net)
	cl, _ := NewClient(cfg(cs))
	done := make(chan error, 1)
	go func() {
		_, err := cl.Call(999, []byte("hang"))
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cl.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("pending call succeeded after Close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pending call never failed")
	}
	if _, err := cl.Call(999, nil); err == nil {
		t.Fatal("call on closed client succeeded")
	}
}

func TestServerCloseStopsServing(t *testing.T) {
	net := memnet.NewReliable()
	defer net.Close()
	ss, cs := newStack(t, net), newStack(t, net)
	srv, _ := NewServer(cfg(ss), 0, func(req []byte) ([]byte, flip.Address) { return req, 0 })
	cl, _ := NewClient(cfg(cs))
	defer cl.Close()
	if _, err := cl.Call(srv.Addr(), []byte("a")); err != nil {
		t.Fatalf("pre-close call: %v", err)
	}
	srv.Close()
	c2 := cfg(cs)
	_ = c2
	clFast, _ := NewClient(Config{Stack: cs, Clock: sim.NewRealClock(), RetryInterval: 10 * time.Millisecond, MaxRetries: 3})
	defer clFast.Close()
	if _, err := clFast.Call(srv.Addr(), []byte("b")); err == nil {
		t.Fatal("call to closed server succeeded")
	}
}

func TestHeaderCodecRoundTrip(t *testing.T) {
	f := func(typ uint8, txn uint32, replyTo uint64, body []byte) bool {
		if typ == 0 {
			typ = 1
		}
		h := header{typ: pktType(typ), txn: txn, replyTo: flip.Address(replyTo)}
		got, payload, err := decode(encode(h, body))
		if err != nil {
			return false
		}
		return got == h && bytes.Equal(payload, body)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsShort(t *testing.T) {
	if _, _, err := decode(make([]byte, HeaderSize-1)); err == nil {
		t.Fatal("short packet accepted")
	}
}

func TestLargePayloadRoundTrip(t *testing.T) {
	net := memnet.NewReliable()
	defer net.Close()
	ss, cs := newStack(t, net), newStack(t, net)
	srv, _ := NewServer(cfg(ss), 0, func(req []byte) ([]byte, flip.Address) { return req, 0 })
	defer srv.Close()
	cl, _ := NewClient(cfg(cs))
	defer cl.Close()
	big := make([]byte, 8000)
	for i := range big {
		big[i] = byte(i * 31)
	}
	reply, err := cl.Call(srv.Addr(), big)
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if !bytes.Equal(reply, big) {
		t.Fatal("large payload corrupted")
	}
}

// TestCallContextCancelStopsRetransmission is the regression test for the
// per-call deadline story: when the caller's context expires mid-retransmit,
// the pending transaction is withdrawn — the retry timer stops, retransmission
// traffic ceases, and no goroutine lingers blocked on the reply.
func TestCallContextCancelStopsRetransmission(t *testing.T) {
	net := memnet.NewReliable()
	defer net.Close()
	ss, cs := newStack(t, net), newStack(t, net)

	// A black hole: receives requests, counts them, never replies.
	var reqs atomic.Uint64
	hole := ss.AllocAddress()
	ss.Register(hole, func(m flip.Message) {
		if h, _, err := decode(m.Payload); err == nil && h.typ == ptRequest {
			reqs.Add(1)
		}
	})

	cl, err := NewClient(cfg(cs))
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	defer cl.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := cl.CallContext(ctx, hole, []byte("into the void"))
		done <- err
	}()
	// Let at least two retransmission rounds happen, then cancel.
	deadline := time.Now().Add(2 * time.Second)
	for reqs.Load() < 3 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if reqs.Load() < 3 {
		t.Fatalf("only %d requests reached the server", reqs.Load())
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("CallContext returned %v, want context.Canceled", err)
		}
	case <-time.After(time.Second):
		t.Fatal("CallContext did not return after cancellation")
	}
	// No retransmissions after the withdrawal: the retry timer is dead.
	time.Sleep(3 * cfg(cs).RetryInterval)
	settled := reqs.Load()
	time.Sleep(5 * cfg(cs).RetryInterval)
	if got := reqs.Load(); got != settled {
		t.Fatalf("retransmissions continued after cancel: %d -> %d", settled, got)
	}
	// The client is still usable, and the pending table holds no corpse.
	cl.mu.Lock()
	pending := len(cl.pending)
	cl.mu.Unlock()
	if pending != 0 {
		t.Fatalf("%d pending calls after cancellation", pending)
	}
}

// TestConcurrentServerDoesNotBlockDelivery: with Concurrent set, a handler
// that itself waits for another inbound packet completes instead of
// deadlocking the stack's delivery goroutine.
func TestConcurrentServerDoesNotBlockDelivery(t *testing.T) {
	net := memnet.NewReliable()
	defer net.Close()
	ss, cs := newStack(t, net), newStack(t, net)

	c := cfg(ss)
	c.Concurrent = true
	unblock := make(chan struct{})
	inner, err := NewServer(cfg(ss), 0, func(req []byte) ([]byte, flip.Address) {
		close(unblock)
		return []byte("inner"), 0
	})
	if err != nil {
		t.Fatalf("inner server: %v", err)
	}
	defer inner.Close()
	outer, err := NewServer(c, 0, func(req []byte) ([]byte, flip.Address) {
		// Block until the inner handler — reached over the SAME stack's
		// delivery path — has run. With a synchronous server this would
		// deadlock on a remote-to-remote deployment; concurrent handlers
		// must survive it.
		<-unblock
		return []byte("outer"), 0
	})
	if err != nil {
		t.Fatalf("outer server: %v", err)
	}
	defer outer.Close()

	clOuter, err := NewClient(cfg(cs))
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	defer clOuter.Close()
	clInner, err := NewClient(cfg(cs))
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	defer clInner.Close()

	outerDone := make(chan error, 1)
	go func() {
		_, err := clOuter.Call(outer.Addr(), []byte("o"))
		outerDone <- err
	}()
	// The outer handler is now (soon) blocked; the inner call must still
	// get through the same server stack.
	if _, err := clInner.Call(inner.Addr(), []byte("i")); err != nil {
		t.Fatalf("inner call: %v", err)
	}
	select {
	case err := <-outerDone:
		if err != nil {
			t.Fatalf("outer call: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("outer call never completed")
	}
}

// TestForwardRewrite: a forwarding handler that returns a non-nil reply
// replaces the request payload — the backend sees the rewritten bytes and
// the client gets the backend's reply.
func TestForwardRewrite(t *testing.T) {
	net := memnet.NewReliable()
	defer net.Close()
	fs, bs, cs := newStack(t, net), newStack(t, net), newStack(t, net)

	backend, err := NewServer(cfg(bs), 0, func(req []byte) ([]byte, flip.Address) {
		return append([]byte("saw:"), req...), 0
	})
	if err != nil {
		t.Fatalf("backend: %v", err)
	}
	defer backend.Close()
	front, err := NewServer(cfg(fs), 0, func(req []byte) ([]byte, flip.Address) {
		return append([]byte("stamped+"), req...), backend.Addr()
	})
	if err != nil {
		t.Fatalf("front: %v", err)
	}
	defer front.Close()

	cl, err := NewClient(cfg(cs))
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	defer cl.Close()
	reply, err := cl.Call(front.Addr(), []byte("x"))
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if string(reply) != "saw:stamped+x" {
		t.Fatalf("reply = %q, want %q", reply, "saw:stamped+x")
	}
}

// TestReplyCachePerTransaction: the at-most-once cache is keyed by (client,
// txn), so a retransmission of an OLD transaction must be answered from the
// cache even after the same client completed a NEWER one — the single-slot
// thrash the LRU replaces.
func TestReplyCachePerTransaction(t *testing.T) {
	net := memnet.NewReliable()
	defer net.Close()
	ss, cs := newStack(t, net), newStack(t, net)
	var executions atomic.Uint64
	srv, err := NewServer(cfg(ss), 0, func(req []byte) ([]byte, flip.Address) {
		executions.Add(1)
		return append([]byte("r:"), req...), 0
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	defer srv.Close()

	// Drive the wire protocol directly so the duplicate is under test
	// control: a client address that records replies.
	clientAddr := cs.AllocAddress()
	type rep struct {
		txn     uint32
		payload []byte
	}
	replies := make(chan rep, 16)
	cs.Register(clientAddr, func(m flip.Message) {
		if txn, payload, ok := DecodeReply(m.Payload); ok {
			replies <- rep{txn: txn, payload: payload}
		}
	})
	defer cs.Unregister(clientAddr)

	send := func(txn uint32, body string) {
		if err := cs.Send(clientAddr, srv.Addr(), EncodeRequest(txn, clientAddr, []byte(body))); err != nil {
			t.Fatalf("send txn %d: %v", txn, err)
		}
	}
	recv := func(wantTxn uint32, wantBody string) {
		t.Helper()
		select {
		case r := <-replies:
			if r.txn != wantTxn || string(r.payload) != wantBody {
				t.Fatalf("reply = txn %d %q, want txn %d %q", r.txn, r.payload, wantTxn, wantBody)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("no reply for txn %d", wantTxn)
		}
	}

	send(1, "a")
	recv(1, "r:a")
	send(2, "b") // a newer transaction from the same client
	recv(2, "r:b")
	send(1, "a") // retransmission of the OLD transaction
	recv(1, "r:a")
	if got := executions.Load(); got != 2 {
		t.Fatalf("handler executed %d times, want 2 (the txn-1 retransmission must hit the cache)", got)
	}
}

// TestConcurrentPoolBounded: Concurrent mode must cap handler parallelism at
// MaxConcurrent — a burst beyond the cap queues or sheds (and retransmits),
// never spawns unbounded goroutines — while every call still completes.
func TestConcurrentPoolBounded(t *testing.T) {
	net := memnet.NewReliable()
	defer net.Close()
	ss := newStack(t, net)

	const cap = 4
	var (
		running atomic.Int64
		peak    atomic.Int64
	)
	gate := make(chan struct{})
	scfg := cfg(ss)
	scfg.Concurrent = true
	scfg.MaxConcurrent = cap
	srv, err := NewServer(scfg, 0, func(req []byte) ([]byte, flip.Address) {
		n := running.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		<-gate
		running.Add(-1)
		return req, 0
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	defer srv.Close()

	const calls = 32
	var wg sync.WaitGroup
	errs := make([]error, calls)
	for i := 0; i < calls; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			cs := newStack(t, net)
			cl, err := NewClient(cfg(cs))
			if err != nil {
				errs[i] = err
				return
			}
			defer cl.Close()
			_, errs[i] = cl.Call(srv.Addr(), []byte{byte(i)})
		}()
	}
	// Let the burst saturate the pool, then release the handlers.
	time.Sleep(300 * time.Millisecond)
	close(gate)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if p := peak.Load(); p > cap {
		t.Fatalf("handler parallelism peaked at %d, cap is %d", p, cap)
	}
	if p := peak.Load(); p == 0 {
		t.Fatal("no handler ever ran")
	}
}
