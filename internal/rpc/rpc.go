// Package rpc implements Amoeba-style remote procedure call over FLIP: the
// point-to-point primitive the paper compares group communication against
// (§4: a null group send is about 0.1 ms faster than a null RPC on the same
// hardware).
//
// The protocol is the classic blocking request/reply with at-most-once
// execution: the client retransmits until a reply (or a server-side
// acknowledgement of a long-running call) arrives; the server suppresses
// duplicate transaction ids and caches replies — an LRU keyed by (client,
// transaction), so pipelined calls from one client each keep their own
// at-most-once slot — for retransmission. ForwardRequest — the Table 1
// primitive that bounces a
// request to another group member — is supported by letting a handler return
// a forward address: the server hands the original request to the new
// destination, and the reply flows back to the client directly.
package rpc

import (
	"container/list"
	"context"
	"encoding/binary"
	"errors"
	"sync"
	"time"

	"amoeba/internal/cost"
	"amoeba/internal/flip"
	"amoeba/internal/sim"
)

// HeaderSize is the RPC header added to every packet.
const HeaderSize = 20

type pktType uint8

const (
	ptRequest pktType = iota + 1
	ptReply
	ptForwarded // a request arriving via ForwardRequest; replyTo differs from src
)

// header layout (20 bytes):
//
//	off size field
//	0   1    type
//	1   3    reserved
//	4   4    transaction id
//	4   8    client address (reply destination)
//	12  8    (forwarded requests) original client address
type header struct {
	typ     pktType
	txn     uint32
	replyTo flip.Address
}

func encode(h header, payload []byte) []byte {
	buf := make([]byte, HeaderSize+len(payload))
	buf[0] = byte(h.typ)
	binary.BigEndian.PutUint32(buf[4:], h.txn)
	binary.BigEndian.PutUint64(buf[12:], uint64(h.replyTo))
	copy(buf[HeaderSize:], payload)
	return buf
}

var errShort = errors.New("rpc: packet shorter than header")

// EncodeRequest renders a raw request packet. It exists for simulation
// harnesses that drive the client wire protocol from a discrete-event loop
// (where the blocking Call cannot run); ordinary users call Client.Call.
func EncodeRequest(txn uint32, replyTo flip.Address, payload []byte) []byte {
	return encode(header{typ: ptRequest, txn: txn, replyTo: replyTo}, payload)
}

// DecodeReply parses a raw reply packet, returning its transaction id and
// payload. The counterpart of EncodeRequest for simulation harnesses.
func DecodeReply(buf []byte) (uint32, []byte, bool) {
	h, payload, err := decode(buf)
	if err != nil || h.typ != ptReply {
		return 0, nil, false
	}
	return h.txn, payload, true
}

func decode(buf []byte) (header, []byte, error) {
	if len(buf) < HeaderSize {
		return header{}, nil, errShort
	}
	return header{
		typ:     pktType(buf[0]),
		txn:     binary.BigEndian.Uint32(buf[4:]),
		replyTo: flip.Address(binary.BigEndian.Uint64(buf[12:])),
	}, buf[HeaderSize:], nil
}

// Errors surfaced by the RPC layer.
var (
	// ErrTimeout reports exhausted client retransmissions.
	ErrTimeout = errors.New("rpc: request timed out")
	// ErrClosed reports use after Close.
	ErrClosed = errors.New("rpc: endpoint closed")
)

// Handler serves one request. Returning a non-zero forward address instead of
// a reply hands the request to that server (the ForwardRequest primitive); the
// reply then reaches the client from wherever the request lands. When
// forwarding, a non-nil reply REPLACES the request payload — the handler may
// rewrite the request before handing it on (e.g. to stamp an already-forwarded
// marker); a nil reply forwards the original bytes unchanged.
type Handler func(req []byte) (reply []byte, forward flip.Address)

// Config assembles a Client or Server.
type Config struct {
	// Stack is the FLIP stack to run over. Required.
	Stack *flip.Stack
	// Clock drives retransmission timers. Required.
	Clock sim.Clock
	// Meter accounts per-layer processing; nil disables.
	Meter cost.Meter
	// RetryInterval spaces client retransmissions (default 50 ms).
	RetryInterval time.Duration
	// MaxRetries bounds them (default 10).
	MaxRetries int
	// Concurrent makes a Server run request handlers on a bounded worker
	// pool, so handlers may block — perform group sends, wait on other
	// RPCs — without stalling the stack's delivery goroutine (which would
	// deadlock a handler that needs inbound packets to make progress).
	// Duplicate requests arriving while a handler runs are dropped; the
	// client's retransmissions are answered from the reply cache once the
	// handler completes.
	Concurrent bool
	// MaxConcurrent bounds the Concurrent worker pool (default 64): a
	// retransmission storm queues — and past the queue, drops — requests
	// instead of spawning unbounded goroutines; dropped requests are
	// served by the client's next retransmission.
	MaxConcurrent int
	// ReplyCacheSize bounds the at-most-once reply cache, an LRU keyed by
	// (client, transaction) — so concurrent requests from one client each
	// keep their own cached reply instead of thrashing a single slot
	// (default 1024 entries).
	ReplyCacheSize int
}

func (c *Config) applyDefaults() {
	if c.Meter == nil {
		c.Meter = cost.NopMeter{}
	}
	if c.RetryInterval <= 0 {
		c.RetryInterval = 50 * time.Millisecond
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 10
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 64
	}
	if c.ReplyCacheSize <= 0 {
		c.ReplyCacheSize = 1024
	}
}

// Client issues blocking RPCs from its own FLIP address.
type Client struct {
	cfg  Config
	addr flip.Address

	mu      sync.Mutex
	closed  bool
	nextTxn uint32
	pending map[uint32]*call
}

type call struct {
	done  chan callResult
	timer sim.Timer
	tries int
	dst   flip.Address
	pkt   []byte
}

type callResult struct {
	payload []byte
	err     error
}

// NewClient registers a fresh client address on the stack.
func NewClient(cfg Config) (*Client, error) {
	if cfg.Stack == nil || cfg.Clock == nil {
		return nil, errors.New("rpc: Stack and Clock are required")
	}
	cfg.applyDefaults()
	c := &Client{cfg: cfg, addr: cfg.Stack.AllocAddress(), pending: make(map[uint32]*call)}
	cfg.Stack.Register(c.addr, c.onMessage)
	return c, nil
}

// Addr returns the client's FLIP address.
func (c *Client) Addr() flip.Address { return c.addr }

// Close releases the client address. In-flight calls fail with ErrClosed.
func (c *Client) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	pend := c.pending
	c.pending = map[uint32]*call{}
	c.mu.Unlock()
	c.cfg.Stack.Unregister(c.addr)
	for _, cl := range pend {
		if cl.timer != nil {
			cl.timer.Stop()
		}
		cl.done <- callResult{err: ErrClosed}
	}
}

// Call performs a blocking RPC to the server address dst: the paper's
// trans/RPC primitive. It retransmits on loss and returns the server's
// reply. Equivalent to CallContext with a background context.
func (c *Client) Call(dst flip.Address, req []byte) ([]byte, error) {
	return c.CallContext(context.Background(), dst, req)
}

// CallContext performs a blocking RPC bounded by ctx: when ctx expires
// mid-call the pending transaction is withdrawn — its retransmission timer
// stops and no goroutine lingers — and ctx's error is returned. A reply that
// raced the cancellation is returned instead.
func (c *Client) CallContext(ctx context.Context, dst flip.Address, req []byte) ([]byte, error) {
	c.cfg.Meter.Charge(cost.UserSend, len(req))
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	c.nextTxn++
	txn := c.nextTxn
	cl := &call{
		done: make(chan callResult, 1),
		dst:  dst,
		pkt:  encode(header{typ: ptRequest, txn: txn, replyTo: c.addr}, req),
	}
	c.pending[txn] = cl
	c.mu.Unlock()

	c.transmit(txn, cl)
	select {
	case res := <-cl.done:
		return res.payload, res.err
	case <-ctx.Done():
		c.mu.Lock()
		if _, ok := c.pending[txn]; ok {
			delete(c.pending, txn)
			if cl.timer != nil {
				cl.timer.Stop()
			}
			c.mu.Unlock()
			return nil, ctx.Err()
		}
		c.mu.Unlock()
		// The call resolved concurrently with the cancellation; the
		// result is already (or imminently) in the buffered channel.
		res := <-cl.done
		return res.payload, res.err
	}
}

func (c *Client) transmit(txn uint32, cl *call) {
	c.cfg.Meter.Charge(cost.GroupOut, 0) // RPC shares the top protocol layer
	_ = c.cfg.Stack.Send(c.addr, cl.dst, cl.pkt)
	c.mu.Lock()
	if _, ok := c.pending[txn]; !ok {
		c.mu.Unlock()
		return
	}
	cl.timer = c.cfg.Clock.AfterFunc(c.cfg.RetryInterval, func() { c.retry(txn) })
	c.mu.Unlock()
}

func (c *Client) retry(txn uint32) {
	c.mu.Lock()
	cl, ok := c.pending[txn]
	if !ok || c.closed {
		c.mu.Unlock()
		return
	}
	cl.tries++
	if cl.tries > c.cfg.MaxRetries {
		delete(c.pending, txn)
		c.mu.Unlock()
		cl.done <- callResult{err: ErrTimeout}
		return
	}
	c.mu.Unlock()
	if cl.tries >= 2 {
		// Two silent rounds suggest a stale route rather than frame loss:
		// a well-known address served by several kernels may have failed
		// over, so drop the cached route and let the retransmission
		// re-locate a surviving server.
		c.cfg.Stack.Forget(cl.dst)
	}
	c.transmit(txn, cl)
}

func (c *Client) onMessage(m flip.Message) {
	c.cfg.Meter.Charge(cost.CtrlIn, 0)
	h, payload, err := decode(m.Payload)
	if err != nil || h.typ != ptReply {
		return
	}
	c.mu.Lock()
	cl, ok := c.pending[h.txn]
	if !ok {
		c.mu.Unlock()
		return // duplicate reply
	}
	delete(c.pending, h.txn)
	if cl.timer != nil {
		cl.timer.Stop()
	}
	c.mu.Unlock()
	c.cfg.Meter.Charge(cost.UserDeliver, len(payload))
	p := make([]byte, len(payload))
	copy(p, payload)
	cl.done <- callResult{payload: p}
}

// Server answers RPCs at a FLIP address.
type Server struct {
	cfg     Config
	addr    flip.Address
	handler Handler

	mu     sync.Mutex
	closed bool
	// Duplicate suppression and reply retransmission: an LRU keyed by
	// (client, txn), so concurrent transactions from one client each keep
	// their own cached reply instead of thrashing a single slot.
	replies   map[inflightKey]*list.Element
	replyList *list.List // front: most recently used cacheEntry
	// Requests whose handler is still running (Concurrent mode):
	// retransmissions arriving meanwhile are dropped, not re-executed.
	inflight map[inflightKey]bool
	// Last forward per client: a retransmission that forwards to the same
	// destination again hints the forward route is stale.
	lastFwd map[flip.Address]forwardMark
	// Concurrent-mode worker pool: requests queue on work, MaxConcurrent
	// workers drain it, overflow is dropped for the client to retransmit.
	work    chan job
	dropped uint64
}

type cacheEntry struct {
	key inflightKey
	pkt []byte
}

type job struct {
	h       header
	client  flip.Address
	payload []byte
}

type inflightKey struct {
	client flip.Address
	txn    uint32
}

type forwardMark struct {
	txn uint32
	dst flip.Address
}

// cacheReplyLocked stores a reply packet under (client, txn), evicting the
// least recently used entry past the cache bound.
func (s *Server) cacheReplyLocked(key inflightKey, pkt []byte) {
	if el, ok := s.replies[key]; ok {
		el.Value.(*cacheEntry).pkt = pkt
		s.replyList.MoveToFront(el)
		return
	}
	s.replies[key] = s.replyList.PushFront(&cacheEntry{key: key, pkt: pkt})
	for len(s.replies) > s.cfg.ReplyCacheSize {
		oldest := s.replyList.Back()
		s.replyList.Remove(oldest)
		delete(s.replies, oldest.Value.(*cacheEntry).key)
	}
}

// cachedReplyLocked fetches the reply cached for (client, txn), refreshing
// its recency.
func (s *Server) cachedReplyLocked(key inflightKey) ([]byte, bool) {
	el, ok := s.replies[key]
	if !ok {
		return nil, false
	}
	s.replyList.MoveToFront(el)
	return el.Value.(*cacheEntry).pkt, true
}

// NewServer registers addr (allocating one when zero) and serves requests
// with h. Handlers run on the stack's delivery goroutine; they may perform
// their own sends but must not block indefinitely.
func NewServer(cfg Config, addr flip.Address, h Handler) (*Server, error) {
	if cfg.Stack == nil || cfg.Clock == nil {
		return nil, errors.New("rpc: Stack and Clock are required")
	}
	if h == nil {
		return nil, errors.New("rpc: handler is required")
	}
	cfg.applyDefaults()
	if addr == 0 {
		addr = cfg.Stack.AllocAddress()
	}
	s := &Server{
		cfg:       cfg,
		addr:      addr,
		handler:   h,
		replies:   make(map[inflightKey]*list.Element),
		replyList: list.New(),
		inflight:  make(map[inflightKey]bool),
		lastFwd:   make(map[flip.Address]forwardMark),
	}
	if cfg.Concurrent {
		// The queue holds a few bursts beyond the pool so short spikes do
		// not drop; a sustained storm drops and relies on retransmission.
		s.work = make(chan job, 4*cfg.MaxConcurrent)
		for i := 0; i < cfg.MaxConcurrent; i++ {
			go s.worker()
		}
	}
	cfg.Stack.Register(addr, s.onMessage)
	return s, nil
}

// worker drains the Concurrent request queue.
func (s *Server) worker() {
	for j := range s.work {
		s.serve(j.h, j.client, j.payload)
	}
}

// Dropped reports requests shed because the Concurrent worker pool and its
// queue were full; each was (or will be) served by a later retransmission.
func (s *Server) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Addr returns the server's FLIP address.
func (s *Server) Addr() flip.Address { return s.addr }

// Close stops serving.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.cfg.Stack.Unregister(s.addr)
	if s.work != nil {
		// Safe: enqueues happen under s.mu with the closed flag checked,
		// so no sender can race this close.
		close(s.work)
	}
}

func (s *Server) onMessage(m flip.Message) {
	s.cfg.Meter.Charge(cost.GroupIn, 0)
	h, payload, err := decode(m.Payload)
	if err != nil {
		return
	}
	if h.typ != ptRequest && h.typ != ptForwarded {
		return
	}
	client := h.replyTo
	key := inflightKey{client: client, txn: h.txn}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if pkt, ok := s.cachedReplyLocked(key); ok {
		// Duplicate request: retransmit the cached reply.
		s.mu.Unlock()
		if pkt != nil {
			_ = s.cfg.Stack.Send(s.addr, client, pkt)
		}
		return
	}
	if s.cfg.Concurrent {
		if s.inflight[key] {
			s.mu.Unlock()
			return // handler already running; the reply will be cached
		}
		select {
		case s.work <- job{h: h, client: client, payload: payload}:
			s.inflight[key] = true
		default:
			// Pool and queue saturated: shed the request rather than
			// spawn; the client's retransmission will try again.
			s.dropped++
		}
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
	s.serve(h, client, payload)
}

// serve runs the handler for one request and transmits the reply or the
// forward. In Concurrent mode it runs on a pool worker; otherwise on the
// stack's delivery goroutine.
func (s *Server) serve(h header, client flip.Address, payload []byte) {
	// The handler is user code: waking the server thread is part of the
	// RPC's cost — the hop a kernel-resident group sequencer does not pay
	// (§4's explanation for group sends beating RPC). The reply needs no
	// second context switch; the server thread is already running.
	s.cfg.Meter.Charge(cost.UserDeliver, len(payload))
	reply, forward := s.handler(payload)
	if forward != 0 {
		// ForwardRequest: hand the request to another server; the reply
		// goes straight back to the client from there. A non-nil reply is
		// the handler's rewritten request body.
		body := payload
		if reply != nil {
			body = reply
		}
		s.mu.Lock()
		if prev, ok := s.lastFwd[client]; ok && prev.txn == h.txn && prev.dst == forward {
			// Re-forwarding the same transaction to the same place: the
			// client retransmitted because no reply came, so the cached
			// route to the forward target is suspect. Re-locate it.
			s.cfg.Stack.Forget(forward)
		}
		if len(s.lastFwd) > 1024 {
			s.lastFwd = make(map[flip.Address]forwardMark)
		}
		s.lastFwd[client] = forwardMark{txn: h.txn, dst: forward}
		delete(s.inflight, inflightKey{client: client, txn: h.txn})
		s.mu.Unlock()
		fwd := encode(header{typ: ptForwarded, txn: h.txn, replyTo: client}, body)
		_ = s.cfg.Stack.Send(s.addr, forward, fwd)
		return
	}
	pkt := encode(header{typ: ptReply, txn: h.txn, replyTo: s.addr}, reply)
	s.mu.Lock()
	s.cacheReplyLocked(inflightKey{client: client, txn: h.txn}, pkt)
	delete(s.inflight, inflightKey{client: client, txn: h.txn})
	s.mu.Unlock()
	s.cfg.Meter.Charge(cost.GroupOut, 0)
	_ = s.cfg.Stack.Send(s.addr, client, pkt)
}
