// Package rpc implements Amoeba-style remote procedure call over FLIP: the
// point-to-point primitive the paper compares group communication against
// (§4: a null group send is about 0.1 ms faster than a null RPC on the same
// hardware).
//
// The protocol is the classic blocking request/reply with at-most-once
// execution: the client retransmits until a reply (or a server-side
// acknowledgement of a long-running call) arrives; the server suppresses
// duplicate transaction ids and caches its last reply per client for
// retransmission. ForwardRequest — the Table 1 primitive that bounces a
// request to another group member — is supported by letting a handler return
// a forward address: the server hands the original request to the new
// destination, and the reply flows back to the client directly.
package rpc

import (
	"encoding/binary"
	"errors"
	"sync"
	"time"

	"amoeba/internal/cost"
	"amoeba/internal/flip"
	"amoeba/internal/sim"
)

// HeaderSize is the RPC header added to every packet.
const HeaderSize = 20

type pktType uint8

const (
	ptRequest pktType = iota + 1
	ptReply
	ptForwarded // a request arriving via ForwardRequest; replyTo differs from src
)

// header layout (20 bytes):
//
//	off size field
//	0   1    type
//	1   3    reserved
//	4   4    transaction id
//	4   8    client address (reply destination)
//	12  8    (forwarded requests) original client address
type header struct {
	typ     pktType
	txn     uint32
	replyTo flip.Address
}

func encode(h header, payload []byte) []byte {
	buf := make([]byte, HeaderSize+len(payload))
	buf[0] = byte(h.typ)
	binary.BigEndian.PutUint32(buf[4:], h.txn)
	binary.BigEndian.PutUint64(buf[12:], uint64(h.replyTo))
	copy(buf[HeaderSize:], payload)
	return buf
}

var errShort = errors.New("rpc: packet shorter than header")

// EncodeRequest renders a raw request packet. It exists for simulation
// harnesses that drive the client wire protocol from a discrete-event loop
// (where the blocking Call cannot run); ordinary users call Client.Call.
func EncodeRequest(txn uint32, replyTo flip.Address, payload []byte) []byte {
	return encode(header{typ: ptRequest, txn: txn, replyTo: replyTo}, payload)
}

// DecodeReply parses a raw reply packet, returning its transaction id and
// payload. The counterpart of EncodeRequest for simulation harnesses.
func DecodeReply(buf []byte) (uint32, []byte, bool) {
	h, payload, err := decode(buf)
	if err != nil || h.typ != ptReply {
		return 0, nil, false
	}
	return h.txn, payload, true
}

func decode(buf []byte) (header, []byte, error) {
	if len(buf) < HeaderSize {
		return header{}, nil, errShort
	}
	return header{
		typ:     pktType(buf[0]),
		txn:     binary.BigEndian.Uint32(buf[4:]),
		replyTo: flip.Address(binary.BigEndian.Uint64(buf[12:])),
	}, buf[HeaderSize:], nil
}

// Errors surfaced by the RPC layer.
var (
	// ErrTimeout reports exhausted client retransmissions.
	ErrTimeout = errors.New("rpc: request timed out")
	// ErrClosed reports use after Close.
	ErrClosed = errors.New("rpc: endpoint closed")
)

// Handler serves one request. Returning a non-zero forward address instead of
// a reply hands the request to that server (the ForwardRequest primitive);
// reply is ignored in that case.
type Handler func(req []byte) (reply []byte, forward flip.Address)

// Config assembles a Client or Server.
type Config struct {
	// Stack is the FLIP stack to run over. Required.
	Stack *flip.Stack
	// Clock drives retransmission timers. Required.
	Clock sim.Clock
	// Meter accounts per-layer processing; nil disables.
	Meter cost.Meter
	// RetryInterval spaces client retransmissions (default 50 ms).
	RetryInterval time.Duration
	// MaxRetries bounds them (default 10).
	MaxRetries int
}

func (c *Config) applyDefaults() {
	if c.Meter == nil {
		c.Meter = cost.NopMeter{}
	}
	if c.RetryInterval <= 0 {
		c.RetryInterval = 50 * time.Millisecond
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 10
	}
}

// Client issues blocking RPCs from its own FLIP address.
type Client struct {
	cfg  Config
	addr flip.Address

	mu      sync.Mutex
	closed  bool
	nextTxn uint32
	pending map[uint32]*call
}

type call struct {
	done  chan callResult
	timer sim.Timer
	tries int
	dst   flip.Address
	pkt   []byte
}

type callResult struct {
	payload []byte
	err     error
}

// NewClient registers a fresh client address on the stack.
func NewClient(cfg Config) (*Client, error) {
	if cfg.Stack == nil || cfg.Clock == nil {
		return nil, errors.New("rpc: Stack and Clock are required")
	}
	cfg.applyDefaults()
	c := &Client{cfg: cfg, addr: cfg.Stack.AllocAddress(), pending: make(map[uint32]*call)}
	cfg.Stack.Register(c.addr, c.onMessage)
	return c, nil
}

// Addr returns the client's FLIP address.
func (c *Client) Addr() flip.Address { return c.addr }

// Close releases the client address. In-flight calls fail with ErrClosed.
func (c *Client) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	pend := c.pending
	c.pending = map[uint32]*call{}
	c.mu.Unlock()
	c.cfg.Stack.Unregister(c.addr)
	for _, cl := range pend {
		if cl.timer != nil {
			cl.timer.Stop()
		}
		cl.done <- callResult{err: ErrClosed}
	}
}

// Call performs a blocking RPC to the server address dst: the paper's
// trans/RPC primitive. It retransmits on loss and returns the server's
// reply.
func (c *Client) Call(dst flip.Address, req []byte) ([]byte, error) {
	c.cfg.Meter.Charge(cost.UserSend, len(req))
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	c.nextTxn++
	txn := c.nextTxn
	cl := &call{
		done: make(chan callResult, 1),
		dst:  dst,
		pkt:  encode(header{typ: ptRequest, txn: txn, replyTo: c.addr}, req),
	}
	c.pending[txn] = cl
	c.mu.Unlock()

	c.transmit(txn, cl)
	res := <-cl.done
	return res.payload, res.err
}

func (c *Client) transmit(txn uint32, cl *call) {
	c.cfg.Meter.Charge(cost.GroupOut, 0) // RPC shares the top protocol layer
	_ = c.cfg.Stack.Send(c.addr, cl.dst, cl.pkt)
	c.mu.Lock()
	if _, ok := c.pending[txn]; !ok {
		c.mu.Unlock()
		return
	}
	cl.timer = c.cfg.Clock.AfterFunc(c.cfg.RetryInterval, func() { c.retry(txn) })
	c.mu.Unlock()
}

func (c *Client) retry(txn uint32) {
	c.mu.Lock()
	cl, ok := c.pending[txn]
	if !ok || c.closed {
		c.mu.Unlock()
		return
	}
	cl.tries++
	if cl.tries > c.cfg.MaxRetries {
		delete(c.pending, txn)
		c.mu.Unlock()
		cl.done <- callResult{err: ErrTimeout}
		return
	}
	c.mu.Unlock()
	c.transmit(txn, cl)
}

func (c *Client) onMessage(m flip.Message) {
	c.cfg.Meter.Charge(cost.CtrlIn, 0)
	h, payload, err := decode(m.Payload)
	if err != nil || h.typ != ptReply {
		return
	}
	c.mu.Lock()
	cl, ok := c.pending[h.txn]
	if !ok {
		c.mu.Unlock()
		return // duplicate reply
	}
	delete(c.pending, h.txn)
	if cl.timer != nil {
		cl.timer.Stop()
	}
	c.mu.Unlock()
	c.cfg.Meter.Charge(cost.UserDeliver, len(payload))
	p := make([]byte, len(payload))
	copy(p, payload)
	cl.done <- callResult{payload: p}
}

// Server answers RPCs at a FLIP address.
type Server struct {
	cfg     Config
	addr    flip.Address
	handler Handler

	mu     sync.Mutex
	closed bool
	// Duplicate suppression and reply retransmission, per client.
	seen map[flip.Address]lastReply
}

type lastReply struct {
	txn uint32
	pkt []byte
}

// NewServer registers addr (allocating one when zero) and serves requests
// with h. Handlers run on the stack's delivery goroutine; they may perform
// their own sends but must not block indefinitely.
func NewServer(cfg Config, addr flip.Address, h Handler) (*Server, error) {
	if cfg.Stack == nil || cfg.Clock == nil {
		return nil, errors.New("rpc: Stack and Clock are required")
	}
	if h == nil {
		return nil, errors.New("rpc: handler is required")
	}
	cfg.applyDefaults()
	if addr == 0 {
		addr = cfg.Stack.AllocAddress()
	}
	s := &Server{cfg: cfg, addr: addr, handler: h, seen: make(map[flip.Address]lastReply)}
	cfg.Stack.Register(addr, s.onMessage)
	return s, nil
}

// Addr returns the server's FLIP address.
func (s *Server) Addr() flip.Address { return s.addr }

// Close stops serving.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.cfg.Stack.Unregister(s.addr)
}

func (s *Server) onMessage(m flip.Message) {
	s.cfg.Meter.Charge(cost.GroupIn, 0)
	h, payload, err := decode(m.Payload)
	if err != nil {
		return
	}
	if h.typ != ptRequest && h.typ != ptForwarded {
		return
	}
	client := h.replyTo

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if last, ok := s.seen[client]; ok && last.txn == h.txn {
		// Duplicate request: retransmit the cached reply.
		pkt := last.pkt
		s.mu.Unlock()
		if pkt != nil {
			_ = s.cfg.Stack.Send(s.addr, client, pkt)
		}
		return
	}
	s.mu.Unlock()

	// The handler is user code: waking the server thread is part of the
	// RPC's cost — the hop a kernel-resident group sequencer does not pay
	// (§4's explanation for group sends beating RPC). The reply needs no
	// second context switch; the server thread is already running.
	s.cfg.Meter.Charge(cost.UserDeliver, len(payload))
	reply, forward := s.handler(payload)
	if forward != 0 {
		// ForwardRequest: hand the request to another server; the reply
		// goes straight back to the client from there.
		fwd := encode(header{typ: ptForwarded, txn: h.txn, replyTo: client}, payload)
		_ = s.cfg.Stack.Send(s.addr, forward, fwd)
		return
	}
	pkt := encode(header{typ: ptReply, txn: h.txn, replyTo: s.addr}, reply)
	s.mu.Lock()
	if len(s.seen) > 1024 { // bound the duplicate cache
		s.seen = make(map[flip.Address]lastReply)
	}
	s.seen[client] = lastReply{txn: h.txn, pkt: pkt}
	s.mu.Unlock()
	s.cfg.Meter.Charge(cost.GroupOut, 0)
	_ = s.cfg.Stack.Send(s.addr, client, pkt)
}
