package amoeba

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"amoeba/internal/core"
)

func TestDeliveryQueueOrderAndBlocking(t *testing.T) {
	q := newDeliveryQueue(0)
	for i := 0; i < 5; i++ {
		q.push(core.Delivery{Kind: core.KindData, Seq: uint32(i + 1)})
	}
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		m, err := q.pop(ctx)
		if err != nil {
			t.Fatalf("pop: %v", err)
		}
		if m.Seq != uint32(i+1) {
			t.Fatalf("pop %d: seq %d", i, m.Seq)
		}
	}
	// Empty queue blocks until push.
	got := make(chan Message, 1)
	go func() {
		m, _ := q.pop(ctx)
		got <- m
	}()
	time.Sleep(10 * time.Millisecond)
	q.push(core.Delivery{Kind: core.KindData, Seq: 99})
	select {
	case m := <-got:
		if m.Seq != 99 {
			t.Fatalf("blocked pop got seq %d", m.Seq)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked pop never woke")
	}
}

func TestDeliveryQueueCloseUnblocksPoppers(t *testing.T) {
	q := newDeliveryQueue(0)
	errCh := make(chan error, 1)
	go func() {
		_, err := q.pop(context.Background())
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	q.close()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrNotMember) {
			t.Fatalf("pop after close: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pop never unblocked after close")
	}
	// Pushes after close are dropped, not panics.
	q.push(core.Delivery{Kind: core.KindData})
}

// TestDeliveryQueueCloseWakesAllPoppers is the regression test for the
// single-waiter wakeup bug class (Signal where Broadcast is needed): close()
// hands out ONE notify token, so every exiting popper must re-arm it for the
// next blocked one. With many receivers blocked concurrently, all of them —
// not just the first — must unblock with ErrNotMember.
func TestDeliveryQueueCloseWakesAllPoppers(t *testing.T) {
	q := newDeliveryQueue(0)
	const poppers = 16
	errs := make(chan error, poppers)
	var started sync.WaitGroup
	for i := 0; i < poppers; i++ {
		started.Add(1)
		go func() {
			started.Done()
			_, err := q.pop(context.Background())
			errs <- err
		}()
	}
	started.Wait()
	time.Sleep(20 * time.Millisecond) // let every popper block in select
	q.close()
	for i := 0; i < poppers; i++ {
		select {
		case err := <-errs:
			if !errors.Is(err, ErrNotMember) {
				t.Fatalf("popper %d: %v, want ErrNotMember", i, err)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("only %d of %d poppers woke after close (lost wakeup)", i, poppers)
		}
	}
	// A popper arriving after close must not block either.
	if _, err := q.pop(context.Background()); !errors.Is(err, ErrNotMember) {
		t.Fatalf("late pop: %v", err)
	}
}

// TestDeliveryQueuePushWakesBlockedPopperPerMessage pins the push-side
// cascade: N poppers blocked, N pushes, every message must come out even
// though the token channel holds one entry.
func TestDeliveryQueuePushWakesBlockedPopperPerMessage(t *testing.T) {
	q := newDeliveryQueue(0)
	const n = 8
	seen := make(chan uint32, n)
	for i := 0; i < n; i++ {
		go func() {
			m, err := q.pop(context.Background())
			if err == nil {
				seen <- m.Seq
			}
		}()
	}
	time.Sleep(20 * time.Millisecond)
	for i := 0; i < n; i++ {
		q.push(core.Delivery{Kind: core.KindData, Seq: uint32(i + 1)})
	}
	got := map[uint32]bool{}
	for i := 0; i < n; i++ {
		select {
		case s := <-seen:
			if got[s] {
				t.Fatalf("seq %d delivered twice", s)
			}
			got[s] = true
		case <-time.After(2 * time.Second):
			t.Fatalf("only %d of %d messages reached blocked poppers", i, n)
		}
	}
	q.close()
}

func TestDeliveryQueueConcurrentPoppers(t *testing.T) {
	q := newDeliveryQueue(0)
	const n = 50
	var wg sync.WaitGroup
	seen := make(chan uint32, n)
	for i := 0; i < 5; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				m, err := q.pop(context.Background())
				if err != nil {
					return
				}
				seen <- m.Seq
			}
		}()
	}
	for i := 0; i < n; i++ {
		q.push(core.Delivery{Kind: core.KindData, Seq: uint32(i + 1)})
	}
	got := map[uint32]bool{}
	for i := 0; i < n; i++ {
		select {
		case s := <-seen:
			if got[s] {
				t.Fatalf("seq %d delivered twice", s)
			}
			got[s] = true
		case <-time.After(5 * time.Second):
			t.Fatalf("only %d of %d messages popped", i, n)
		}
	}
	q.close()
	wg.Wait()
}

func TestGroupNameAndKindMapping(t *testing.T) {
	ctx := ctxT(t)
	net := NewMemoryNetwork()
	defer net.Close()
	k, _ := net.NewKernel("m")
	g, err := k.CreateGroup(ctx, "named", GroupOptions{})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if g.Name() != "named" {
		t.Fatalf("Name = %q", g.Name())
	}
	// kindOf maps every core kind; unknown maps to zero.
	pairs := map[core.MsgKind]MsgKind{
		core.KindData: Data, core.KindJoin: Join, core.KindLeave: Leave,
		core.KindReset: Reset, core.KindExpelled: Expelled, core.MsgKind(200): 0,
	}
	for in, want := range pairs {
		if got := kindOf(in); got != want {
			t.Fatalf("kindOf(%v) = %v, want %v", in, got, want)
		}
	}
}

func TestLeaveViaPublicAPIThenRejoin(t *testing.T) {
	ctx := ctxT(t)
	net := NewMemoryNetwork()
	defer net.Close()
	k1, _ := net.NewKernel("m1")
	k2, _ := net.NewKernel("m2")
	g1, _ := k1.CreateGroup(ctx, "revolving", GroupOptions{})
	_ = g1
	for round := 0; round < 3; round++ {
		g2, err := k2.JoinGroup(ctx, "revolving", GroupOptions{})
		if err != nil {
			t.Fatalf("round %d join: %v", round, err)
		}
		if err := g1.Send(ctx, []byte{byte(round)}); err != nil {
			t.Fatalf("round %d send: %v", round, err)
		}
		for {
			m, err := g2.Receive(ctx)
			if err != nil {
				t.Fatalf("round %d receive: %v", round, err)
			}
			if m.Kind == Data {
				if m.Payload[0] != byte(round) {
					t.Fatalf("round %d payload %d", round, m.Payload[0])
				}
				break
			}
		}
		if err := g2.Leave(ctx); err != nil {
			t.Fatalf("round %d leave: %v", round, err)
		}
	}
}
