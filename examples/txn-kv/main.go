// Cross-shard transactions: a bank that stays balanced through the worst
// possible crash.
//
// kv.Client.Txn commits multi-key read-write transactions atomically across
// shard groups via sequenced two-phase commit: prepare and resolve records
// ride each participant shard's total order (and write-ahead log), the home
// shard's order arbitrates the outcome, and kv.Client.MGet reads a
// consistent cross-shard snapshot on the same machinery. Because every
// phase is journaled like any other command, a transaction interrupted by a
// whole-cluster power cut is crash-resumable: recovery re-answers recorded
// decisions and presumed-abort arbitration settles anything still in doubt.
//
// The demo seeds accounts across four shards, hammers them with concurrent
// conditional transfers while snapshots watch the conserved sum, then
// interrupts a transfer MID-COMMIT (the coordinator is cancelled at a
// random point inside the 2PC) and kills every node. After a cold restart
// from the logs, the client retries the same transfer under its original
// pinned command id — and whatever phase the kill landed in, the transfer
// settles exactly once: the retried request is re-answered or cleanly
// re-driven, never double-applied, and the bank's total never moves.
//
//	go run ./examples/txn-kv
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"time"

	"amoeba"
	"amoeba/kv"
)

const (
	shards   = 4
	nodes    = 3
	accounts = 6
	balance  = 100
)

func acct(i int) string { return fmt.Sprintf("acct-%d", i) }

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	dataDir, err := os.MkdirTemp("", "txn-kv-example-")
	if err != nil {
		log.Fatalf("temp dir: %v", err)
	}
	defer os.RemoveAll(dataDir)
	opts := kv.Options{
		Shards:          shards,
		DataDir:         dataDir,
		CheckpointEvery: 64,
		Group: amoeba.GroupOptions{
			Resilience:   1,
			AutoReset:    true,
			MinSurvivors: 1,
		},
	}

	// --- Generation 0: seed the bank, run concurrent transfers ------------
	fmt.Printf("== txn demo: %d nodes × %d shards, %d accounts × %d\n", nodes, shards, accounts, balance)
	stores, network := boot(ctx, opts, 0)
	cl := stores[0].NewClient()
	var pairs []kv.Pair
	for i := 0; i < accounts; i++ {
		pairs = append(pairs, kv.Pair{Key: acct(i), Val: []byte(strconv.Itoa(balance))})
	}
	if err := cl.BatchPut(ctx, pairs); err != nil {
		log.Fatalf("seeding: %v", err)
	}

	// Concurrent conditional transfers: snapshot two accounts, move money
	// only if both balances are still what the snapshot saw (a cross-shard
	// CAS). Condition-failed aborts mean a rival got there first — retry.
	var (
		wg        sync.WaitGroup
		commits   sync.Map
		transfers = 40
	)
	for w := 0; w < 3; w++ {
		w := w
		wcl := stores[w%nodes].NewClient()
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer wcl.Close()
			rng := rand.New(rand.NewSource(int64(w)))
			done := 0
			for done < transfers {
				a, b := acct(rng.Intn(accounts)), acct(rng.Intn(accounts))
				if a == b {
					continue
				}
				snap, err := wcl.MGet(ctx, a, b)
				if err != nil {
					log.Fatalf("worker %d snapshot: %v", w, err)
				}
				ba, _ := strconv.Atoi(string(snap[a]))
				bb, _ := strconv.Atoi(string(snap[b]))
				amt := 1 + rng.Intn(5)
				if ba < amt {
					continue
				}
				res, err := wcl.Txn(ctx, kv.TxnOp{
					Conds: []kv.TxnCond{
						{Key: a, ExpectPresent: true, Expect: snap[a]},
						{Key: b, ExpectPresent: true, Expect: snap[b]},
					},
					Writes: []kv.TxnWrite{
						{Key: a, Val: []byte(strconv.Itoa(ba - amt))},
						{Key: b, Val: []byte(strconv.Itoa(bb + amt))},
					},
				})
				if err != nil {
					log.Fatalf("worker %d transfer: %v", w, err)
				}
				if res.Committed {
					done++
				}
			}
			commits.Store(w, done)
		}()
	}
	wg.Wait()
	if sum := bankSum(ctx, cl); sum != accounts*balance {
		log.Fatalf("sum %d after concurrent transfers, want %d", sum, accounts*balance)
	}
	fmt.Printf("   %d workers committed %d transfers each; snapshot sum conserved at %d\n",
		3, transfers, accounts*balance)

	// --- The catastrophe: cancel a coordinator MID-2PC, then kill all -----
	// The transfer runs under a pinned command id (what a client library
	// retries with) and its coordinator is cancelled at a random moment —
	// the kill can land before any prepare, between prepares, or between
	// the commit point and the last participant's resolve.
	snap, err := cl.MGet(ctx, acct(0), acct(1))
	if err != nil {
		log.Fatalf("pre-kill snapshot: %v", err)
	}
	b0, _ := strconv.Atoi(string(snap[acct(0)]))
	b1, _ := strconv.Atoi(string(snap[acct(1)]))
	const xferID = 0xBA2C_0FFE
	mkReq := func() *kv.Request {
		return &kv.Request{Op: kv.ReqTxn, ID: xferID,
			Conds: []kv.TxnCond{
				{Key: acct(0), ExpectPresent: true, Expect: append([]byte(nil), snap[acct(0)]...)},
				{Key: acct(1), ExpectPresent: true, Expect: append([]byte(nil), snap[acct(1)]...)},
			},
			Writes: []kv.TxnWrite{
				{Key: acct(0), Val: []byte(strconv.Itoa(b0 - 7))},
				{Key: acct(1), Val: []byte(strconv.Itoa(b1 + 7))},
			}}
	}
	xferCtx, interrupt := context.WithCancel(ctx)
	go func() {
		time.Sleep(time.Duration(200+rand.Intn(400)) * time.Microsecond)
		interrupt()
	}()
	if _, err := cl.Do(xferCtx, mkReq()); err != nil {
		fmt.Printf("== transfer interrupted mid-commit (%v); killing ALL %d nodes\n", err, nodes)
	} else {
		fmt.Printf("== transfer raced the interrupt and committed; killing ALL %d nodes anyway\n", nodes)
	}
	interrupt()
	cl.Close()
	for _, s := range stores {
		s.Close()
	}
	network.Close()

	// --- Generation 1: cold restart, retry under the same id --------------
	stores2, network2 := boot(ctx, opts, 1)
	defer network2.Close()
	defer func() {
		for _, s := range stores2 {
			s.Close()
		}
	}()
	cl2 := stores2[nodes-1].NewClient()
	defer cl2.Close()
	resp, err := cl2.Do(ctx, mkReq())
	if err != nil {
		log.Fatalf("retried transfer: %v", err)
	}
	if !resp.OK || resp.CondFailed {
		log.Fatalf("retried transfer answered %+v — the conditions were against untouched balances, so a half-applied state leaked", resp)
	}
	v0, _, _ := cl2.Get(ctx, acct(0))
	v1, _, _ := cl2.Get(ctx, acct(1))
	if string(v0) != strconv.Itoa(b0-7) || string(v1) != strconv.Itoa(b1+7) {
		log.Fatalf("balances %s/%s after retry, want %d/%d — the transfer applied twice or tore",
			v0, v1, b0-7, b1+7)
	}
	if sum := bankSum(ctx, cl2); sum != accounts*balance {
		log.Fatalf("sum %d after restart, want %d", sum, accounts*balance)
	}
	fmt.Printf("== cold restart: retried transfer settled exactly once (%s: %d→%s, %s: %d→%s), sum still %d\n",
		acct(0), b0, v0, acct(1), b1, v1, accounts*balance)
	fmt.Println("== the bank never lost a cent")
}

// boot starts (or, re-run on the same data dir, recovers) the cluster.
func boot(ctx context.Context, opts kv.Options, gen int) ([]*kv.Store, *amoeba.MemoryNetwork) {
	network := amoeba.NewMemoryNetwork()
	kernels := make([]*amoeba.Kernel, nodes)
	for i := range kernels {
		k, err := network.NewKernel(fmt.Sprintf("gen%d-node-%d", gen, i))
		if err != nil {
			log.Fatalf("kernel: %v", err)
		}
		kernels[i] = k
	}
	stores, err := kv.Bootstrap(ctx, kernels, "txn-demo", opts)
	if err != nil {
		log.Fatalf("bootstrap (gen %d): %v", gen, err)
	}
	return stores, network
}

// bankSum reads every account through ONE consistent snapshot and sums it.
func bankSum(ctx context.Context, cl *kv.Client) int {
	keys := make([]string, accounts)
	for i := range keys {
		keys[i] = acct(i)
	}
	snap, err := cl.MGet(ctx, keys...)
	if err != nil {
		log.Fatalf("bank snapshot: %v", err)
	}
	sum := 0
	for _, k := range keys {
		n, err := strconv.Atoi(string(snap[k]))
		if err != nil {
			log.Fatalf("account %s = %q unparseable", k, snap[k])
		}
		sum += n
	}
	return sum
}
