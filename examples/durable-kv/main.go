// Durable key-value store: surviving the crash replication cannot mask.
//
// The group system's resilience degree r guarantees that any r simultaneous
// member crashes lose no completed command — but if EVERY node goes down at
// once (a rack power cut), an in-memory store is gone. With kv.Options.
// DataDir set, each shard replica journals its totally-ordered deliveries to
// a segmented, checksummed write-ahead log and checkpoints snapshots, so a
// whole-cluster restart rebuilds every shard from the newest checkpoint plus
// the journal suffix, reforms each shard group from the longest surviving
// log (the others re-sync by atomic state transfer), and — because the
// replicated command-id dedup state recovers with the data — a client
// retrying a command across the restart stays exactly-once.
//
// The demo loads a keyspace and takes a CAS lock, digests the store, kills
// every node and the network, cold-restarts the cluster from the logs,
// proves the keyspace is byte-identical, and retries the original CAS to
// show the duplicate is suppressed.
//
//	go run ./examples/durable-kv
package main

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"amoeba"
	"amoeba/kv"
)

const (
	shards = 4
	nodes  = 3
	keys   = 150
)

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	dataDir, err := os.MkdirTemp("", "durable-kv-example-")
	if err != nil {
		log.Fatalf("temp dir: %v", err)
	}
	defer os.RemoveAll(dataDir)
	opts := kv.Options{
		Shards:          shards,
		DataDir:         dataDir,
		CheckpointEvery: 64,
		Group: amoeba.GroupOptions{
			Resilience:   1,
			AutoReset:    true,
			MinSurvivors: 1,
		},
	}

	// --- Generation 0: boot, load, lock ---------------------------------
	fmt.Printf("== durable boot: %d nodes × %d shards, logs under %s\n", nodes, shards, dataDir)
	stores, network := boot(ctx, opts, 0)
	cl := stores[0].NewClient()
	var pairs []kv.Pair
	for i := 0; i < keys; i++ {
		pairs = append(pairs, kv.Pair{
			Key: fmt.Sprintf("user:%04d", i),
			Val: []byte(fmt.Sprintf("profile-%04d", i)),
		})
	}
	if err := cl.BatchPut(ctx, pairs); err != nil {
		log.Fatalf("loading: %v", err)
	}
	// A client takes a lock with an atomic create, pinning the command id
	// as a real client library would for retries.
	lockReq := &kv.Request{Op: kv.ReqCAS, Key: "leader-lock", Val: []byte("scheduler-7"), ID: 0xFEED_BEEF}
	resp, err := cl.Do(ctx, lockReq)
	if err != nil || !resp.OK {
		log.Fatalf("taking lock: %+v, %v", resp, err)
	}
	before := digest(ctx, cl)
	fmt.Printf("   loaded %d keys + took leader-lock; keyspace digest %s\n", keys, before[:12])
	cl.Close()

	// --- The catastrophe: every node dies at once -----------------------
	fmt.Printf("== killing ALL %d nodes (and the network): in-memory history is gone\n", nodes)
	for _, s := range stores {
		s.Close()
	}
	network.Close()

	// --- Generation 1: cold restart from the logs -----------------------
	start := time.Now()
	stores2, network2 := boot(ctx, opts, 1)
	defer network2.Close()
	defer func() {
		for _, s := range stores2 {
			s.Close()
		}
	}()
	fmt.Printf("== cold restart: every shard recovered from checkpoint + journal suffix in %v\n",
		time.Since(start).Round(time.Millisecond))
	for i := 0; i < shards; i++ {
		if r := stores2[0].Replica(i); r != nil {
			st := r.DurabilityStats()
			fmt.Printf("   shard %d: recovered to seq %d (checkpoint at %d, %d entries replayed)\n",
				i, st.LastSeq, st.CheckpointSeq, st.Log.RecoveredEntries)
		}
	}

	cl2 := stores2[nodes-1].NewClient() // any node serves the recovered keyspace
	defer cl2.Close()
	after := digest(ctx, cl2)
	if after != before {
		log.Fatalf("keyspace diverged across the restart: %s != %s", after, before)
	}
	fmt.Printf("   keyspace digest after restart %s — byte-identical\n", after[:12])

	// The lock-taker retries its CAS (same command id): the recovered
	// dedup state answers the ORIGINAL result instead of re-executing.
	retry := &kv.Request{Op: kv.ReqCAS, Key: "leader-lock", Val: []byte("scheduler-7"), ID: 0xFEED_BEEF}
	resp2, err := cl2.Do(ctx, retry)
	if err != nil || !resp2.OK {
		log.Fatalf("retried CAS: %+v, %v (the duplicate was re-executed?)", resp2, err)
	}
	// A rival's fresh create must still lose: the lock value survived.
	if won, err := cl2.CAS(ctx, "leader-lock", nil, []byte("usurper")); err != nil || won {
		log.Fatalf("usurper CAS = %v, %v — the recovered store lost the lock", won, err)
	}
	v, _, _ := cl2.Get(ctx, "leader-lock")
	fmt.Printf("   retried CAS answered OK (exactly-once across the restart); lock still held by %q\n", v)
	fmt.Println("== durable recovery complete")
}

// boot starts (or, re-run on the same data dir, recovers) the cluster.
func boot(ctx context.Context, opts kv.Options, gen int) ([]*kv.Store, *amoeba.MemoryNetwork) {
	network := amoeba.NewMemoryNetwork()
	kernels := make([]*amoeba.Kernel, nodes)
	for i := range kernels {
		k, err := network.NewKernel(fmt.Sprintf("gen%d-node-%d", gen, i))
		if err != nil {
			log.Fatalf("kernel: %v", err)
		}
		kernels[i] = k
	}
	stores, err := kv.Bootstrap(ctx, kernels, "durable-demo", opts)
	if err != nil {
		log.Fatalf("bootstrap (gen %d): %v", gen, err)
	}
	return stores, network
}

// digest hashes the whole keyspace through sequenced reads.
func digest(ctx context.Context, cl *kv.Client) string {
	names := make([]string, 0, keys+1)
	for i := 0; i < keys; i++ {
		names = append(names, fmt.Sprintf("user:%04d", i))
	}
	names = append(names, "leader-lock")
	got, err := cl.MGet(ctx, names...)
	if err != nil {
		log.Fatalf("digest: %v", err)
	}
	sorted := make([]string, 0, len(got))
	for k, v := range got {
		sorted = append(sorted, k+"="+string(v))
	}
	sort.Strings(sorted)
	h := sha256.New()
	for _, line := range sorted {
		fmt.Fprintln(h, line)
	}
	return hex.EncodeToString(h.Sum(nil))
}
