// Replicated key-value store: the paper's "replicated servers" use case
// (§5).
//
// Three replicas keep identical copies of a key-value map by running every
// update through the group: because all members receive updates in the same
// total order, applying them in delivery order keeps the replicas
// byte-identical — state machine replication with none of the usual
// conflict-resolution machinery. The group runs with resilience 1, the
// paper's observation for replicated services: small groups, small r,
// acceptable acknowledgement overhead.
//
// The demo applies a mixed workload through different replicas, kills the
// sequencer replica, rebuilds the group with ResetGroup, keeps updating, and
// finally proves all surviving replicas converged to the same state.
//
//	go run ./examples/replicated-kv
package main

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"log"
	"sort"
	"strings"
	"sync"
	"time"

	"amoeba"
)

// replica is one key-value server: a group membership plus the state machine
// it drives.
type replica struct {
	name  string
	group *amoeba.Group

	mu    sync.Mutex
	store map[string]string
	done  chan struct{}
}

// apply executes one update command: "set key value" or "del key".
func (r *replica) apply(cmd string) {
	parts := strings.SplitN(cmd, " ", 3)
	r.mu.Lock()
	defer r.mu.Unlock()
	switch parts[0] {
	case "set":
		r.store[parts[1]] = parts[2]
	case "del":
		delete(r.store, parts[1])
	}
}

// run consumes the totally-ordered stream, applying data messages and
// watching membership events.
func (r *replica) run(ctx context.Context) {
	defer close(r.done)
	for {
		m, err := r.group.Receive(ctx)
		if err != nil {
			return
		}
		switch m.Kind {
		case amoeba.Data:
			r.apply(string(m.Payload))
		case amoeba.Reset:
			fmt.Printf("[%s] group rebuilt: %d members remain\n", r.name, m.Members)
		case amoeba.Leave:
			fmt.Printf("[%s] member %d left (%d remain)\n", r.name, m.Sender, m.Members)
		}
	}
}

// digest summarises the replica's state for convergence checking.
func (r *replica) digest() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	keys := make([]string, 0, len(r.store))
	for k := range r.store {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := sha256.New()
	for _, k := range keys {
		fmt.Fprintf(h, "%s=%s\n", k, r.store[k])
	}
	return hex.EncodeToString(h.Sum(nil)[:8])
}

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	network := amoeba.NewMemoryNetwork()
	defer network.Close()

	opts := amoeba.GroupOptions{Resilience: 1}
	replicas := make([]*replica, 3)
	for i := range replicas {
		k, err := network.NewKernel(fmt.Sprintf("kv-%d", i))
		if err != nil {
			log.Fatalf("kernel: %v", err)
		}
		var g *amoeba.Group
		if i == 0 {
			g, err = k.CreateGroup(ctx, "kv-store", opts)
		} else {
			g, err = k.JoinGroup(ctx, "kv-store", opts)
		}
		if err != nil {
			log.Fatalf("replica %d: %v", i, err)
		}
		replicas[i] = &replica{
			name:  fmt.Sprintf("kv-%d", i),
			group: g,
			store: make(map[string]string),
			done:  make(chan struct{}),
		}
	}
	runCtx, stopRun := context.WithCancel(ctx)
	defer stopRun()
	for _, r := range replicas {
		go r.run(runCtx)
	}

	// Mixed workload through different replicas: total order makes the
	// interleaving identical everywhere.
	update := func(via int, cmd string) {
		if err := replicas[via].group.Send(ctx, []byte(cmd)); err != nil {
			log.Fatalf("update via %d: %v", via, err)
		}
	}
	update(0, "set lang go")
	update(1, "set paper icdcs96")
	update(2, "set system amoeba")
	update(1, "set lang golang") // overwrite: order matters
	update(2, "del paper")

	// Kill the sequencer replica (machine crash), rebuild, keep going.
	fmt.Println("crashing the sequencer replica…")
	replicas[0].group.Close()
	if err := replicas[1].group.Reset(ctx, 2); err != nil {
		log.Fatalf("reset: %v", err)
	}
	update(1, "set recovered true")
	update(2, "set epoch two")

	// Convergence check: both survivors must reach the same digest.
	deadline := time.Now().Add(5 * time.Second)
	for {
		d1, d2 := replicas[1].digest(), replicas[2].digest()
		if d1 == d2 && replicas[1].get("epoch") == "two" && replicas[2].get("epoch") == "two" {
			fmt.Printf("replicas converged: digest %s\n", d1)
			break
		}
		if time.Now().After(deadline) {
			log.Fatalf("replicas diverged: %s vs %s", d1, d2)
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, r := range replicas[1:] {
		fmt.Printf("[%s] lang=%q recovered=%q paper=%q\n",
			r.name, r.get("lang"), r.get("recovered"), r.get("paper"))
	}
}

func (r *replica) get(k string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.store[k]
}
