// Sharded key-value store: the multi-group scaling layer on top of the
// paper's primitives.
//
// The keyspace is consistent-hashed across four shard groups, each an
// independently sequenced replicated state machine hosted on all three
// nodes. Writes to different shards order through different sequencers, so
// the single-sequencer bottleneck of a one-group store (paper Figure 4) is
// multiplied away (Figure 6).
//
// The demo loads data through clients on different nodes, crashes a node
// mid-workload (taking its replica of every shard and the sequencer of the
// shards it led), keeps writing while the groups auto-recover, re-admits a
// replacement node with atomic state transfer on every shard, and proves
// the replacement converged to the byte-identical keyspace.
//
//	go run ./examples/sharded-kv
package main

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"log"
	"time"

	"amoeba"
	"amoeba/kv"
	"amoeba/shared"
)

const (
	shards = 4
	nodes  = 3
	keys   = 120
)

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	network := amoeba.NewMemoryNetwork()
	defer network.Close()

	// Bootstrap: 3 nodes, each hosting a replica of all 4 shards. Shard
	// sequencers land round-robin: node 0 leads shards 0 and 3, node 1
	// leads shard 1, node 2 leads shard 2.
	kernels := make([]*amoeba.Kernel, nodes)
	for i := range kernels {
		k, err := network.NewKernel(fmt.Sprintf("node-%d", i))
		if err != nil {
			log.Fatalf("kernel: %v", err)
		}
		kernels[i] = k
	}
	opts := kv.Options{Shards: shards, Group: amoeba.GroupOptions{
		Resilience:   1,
		AutoReset:    true,
		MinSurvivors: 2,
	}}
	stores, err := kv.Bootstrap(ctx, kernels, "demo", opts)
	if err != nil {
		log.Fatalf("bootstrap: %v", err)
	}
	fmt.Printf("bootstrapped %q: %d shards × %d nodes, resilience 1\n", "demo", shards, nodes)

	// Load data through clients on different nodes; the ring routes each
	// key to its shard regardless of which node the client talks to.
	for i := 0; i < keys; i++ {
		cl := stores[i%nodes].NewClient()
		if err := cl.Put(ctx, key(i), []byte(val(i, "v1"))); err != nil {
			log.Fatalf("put %s: %v", key(i), err)
		}
	}
	perShard := make([]int, shards)
	for i := 0; i < keys; i++ {
		perShard[stores[0].ShardFor(key(i))]++
	}
	fmt.Printf("loaded %d keys, spread across shards: %v\n", keys, perShard)

	// Linearizable read through a different node than the writer used.
	if v, ok, err := stores[2].NewClient().Get(ctx, key(7)); err != nil || !ok {
		log.Fatalf("sequenced read: %q %v %v", v, ok, err)
	} else {
		fmt.Printf("sequenced read of %s via node 2: %s\n", key(7), v)
	}

	// Crash node 2: its replicas of all four shards die, including the
	// sequencer of shard 2. AutoReset rebuilds each group with the two
	// survivors while the workload keeps writing.
	fmt.Println("crashing node 2 mid-workload…")
	stores[2].Close()
	for i := 0; i < keys; i++ {
		cl := stores[i%2].NewClient()
		if err := putRetry(ctx, cl, key(i), []byte(val(i, "v2"))); err != nil {
			log.Fatalf("put during recovery %s: %v", key(i), err)
		}
	}
	fmt.Println("all keys overwritten to v2 while the groups recovered")

	// Re-admit a replacement node: every shard joins with atomic state
	// transfer, so the new node arrives holding the full keyspace.
	fmt.Println("joining replacement node…")
	kNew, err := network.NewKernel("node-2-reborn")
	if err != nil {
		log.Fatalf("replacement kernel: %v", err)
	}
	joinCtx, cancelJoin := context.WithTimeout(ctx, 45*time.Second)
	replacement, err := kv.Join(joinCtx, kNew, "demo", opts)
	cancelJoin()
	if err != nil {
		log.Fatalf("join: %v", err)
	}
	defer replacement.Close()

	// Verify: the replacement answers every key locally with the v2 value.
	cl := replacement.NewClient()
	for i := 0; i < keys; i++ {
		want := val(i, "v2")
		deadline := time.Now().Add(10 * time.Second)
		for {
			if v, ok := cl.LocalGet(key(i)); ok && string(v) == want {
				break
			}
			if time.Now().After(deadline) {
				v, ok := cl.LocalGet(key(i))
				log.Fatalf("replacement missing %s: %q %v (want %s)", key(i), v, ok, want)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	fmt.Printf("replacement node serves all %d keys locally after state transfer\n", keys)

	// And the copies are byte-identical, shard by shard.
	nodesNow := []*kv.Store{stores[0], stores[1], replacement}
	for i := 0; i < shards; i++ {
		waitSync(nodesNow, i)
		d0 := digest(nodesNow[0], i)
		for n := 1; n < len(nodesNow); n++ {
			if d := digest(nodesNow[n], i); d != d0 {
				log.Fatalf("shard %d diverged: node 0 %s vs node %d %s", i, d0, n, d)
			}
		}
		fmt.Printf("shard %d converged on all nodes: digest %s\n", i, d0)
	}
	stores[0].Close()
	stores[1].Close()
}

func key(i int) string             { return fmt.Sprintf("user-%04d", i) }
func val(i int, gen string) string { return fmt.Sprintf("%s-of-user-%04d", gen, i) }

// putRetry retries a Put across recovery windows (a shard mid-reset rejects
// or delays writes briefly).
func putRetry(ctx context.Context, cl *kv.Client, k string, v []byte) error {
	for attempt := 0; ; attempt++ {
		opCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
		err := cl.Put(opCtx, k, v)
		cancel()
		if err == nil {
			return nil
		}
		if attempt > 200 || ctx.Err() != nil {
			return err
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// waitSync blocks until every node applied shard i to the same watermark.
func waitSync(stores []*kv.Store, i int) {
	for deadline := time.Now().Add(15 * time.Second); ; {
		var hi uint32
		for _, s := range stores {
			if a := s.Replica(i).Applied(); a > hi {
				hi = a
			}
		}
		synced := true
		for _, s := range stores {
			if s.Replica(i).Applied() < hi {
				synced = false
			}
		}
		if synced || time.Now().After(deadline) {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// digest summarises one node's copy of shard i by hashing its snapshot
// (which serialises the items deterministically — Go's JSON sorts map keys —
// and embeds the replicated result window, so the digest checks both).
func digest(s *kv.Store, i int) string {
	var (
		snap []byte
		err  error
	)
	s.Replica(i).Read(func(sm shared.StateMachine) {
		snap, err = sm.Snapshot()
	})
	if err != nil {
		return fmt.Sprintf("error:%v", err)
	}
	h := sha256.Sum256(snap)
	return hex.EncodeToString(h[:8])
}
