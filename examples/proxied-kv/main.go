// Proxied key-value access: the paper's ForwardRequest primitive completing
// the sharded store's Table 1 surface.
//
// Four nodes each host exactly one shard (replication 1) and run a
// kv.Service — an RPC server per hosted shard at a well-known address, plus
// a node entry point. A client on a fifth machine holds nothing but node
// 0's address: operations on node 0's shard are served there, and misroutes
// are answered with a ForwardRequest to the owning node, the reply
// returning from wherever the request lands. The demo then crashes an
// owning node mid-workload and shows the well-known shard address
// re-locating to the survivor while command-id deduplication keeps the
// retried writes exactly-once.
//
//	go run ./examples/proxied-kv
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"amoeba"
	"amoeba/kv"
)

const (
	nodes  = 4
	shards = 4
)

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	network := amoeba.NewMemoryNetwork()
	defer network.Close()

	kernels := make([]*amoeba.Kernel, nodes)
	for i := range kernels {
		k, err := network.NewKernel(fmt.Sprintf("node-%d", i))
		if err != nil {
			log.Fatalf("kernel: %v", err)
		}
		kernels[i] = k
	}
	// Replication 2: shard i lives on nodes {i, i+1} mod 4, so node 0
	// hosts shards 0 and 3 and must proxy shards 1 and 2.
	stores, err := kv.Bootstrap(ctx, kernels, "demo", kv.Options{
		Shards:      shards,
		Replication: 2,
		Group: amoeba.GroupOptions{
			Resilience:   1,
			AutoReset:    true,
			MinSurvivors: 1,
		},
	})
	if err != nil {
		log.Fatalf("bootstrap: %v", err)
	}
	services := make([]*kv.Service, nodes)
	for i, s := range stores {
		if services[i], err = kv.NewService(s); err != nil {
			log.Fatalf("service %d: %v", i, err)
		}
	}
	fmt.Printf("cluster up: %d shards × %d nodes, replication 2, a kv.Service per node\n", shards, nodes)

	// The client machine hosts nothing; it knows one address.
	clientKernel, err := network.NewKernel("client")
	if err != nil {
		log.Fatalf("client kernel: %v", err)
	}
	cl, err := kv.Dial(clientKernel, "demo", kv.DialOptions{Node: 0})
	if err != nil {
		log.Fatalf("dial: %v", err)
	}
	defer cl.Close()

	// Write across the whole keyspace through the one address.
	const keys = 40
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("key-%03d", i)
		if err := cl.Put(ctx, k, []byte(fmt.Sprintf("v%d", i))); err != nil {
			log.Fatalf("put %s: %v", k, err)
		}
	}
	st := services[0].Stats()
	fmt.Printf("wrote %d keys via node 0: served=%d forwarded=%d scattered=%d\n",
		keys, st.Served, st.Forwarded, st.Scattered)

	// Crash node 2 (it sequences shard 2 and serves shards 1 and 2).
	// Surviving replicas auto-recover; the well-known shard addresses
	// re-locate to the survivors.
	fmt.Println("crashing node 2 mid-workload…")
	services[2].Close()
	stores[2].Close()

	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("key-%03d", i)
		ok, err := cl.CAS(ctx, k, []byte(fmt.Sprintf("v%d", i)), []byte(fmt.Sprintf("w%d", i)))
		if err != nil {
			log.Fatalf("cas %s: %v", k, err)
		}
		if !ok {
			log.Fatalf("cas %s: conflict — a retry re-executed", k)
		}
	}
	fmt.Println("all CAS swaps succeeded exactly-once across the failover")

	// Linearizable reads through the same single address.
	for i := 0; i < keys; i += 13 {
		k := fmt.Sprintf("key-%03d", i)
		v, ok, err := cl.Get(ctx, k)
		if err != nil || !ok {
			log.Fatalf("get %s: %v (found=%v)", k, err, ok)
		}
		fmt.Printf("  %s = %s\n", k, v)
	}
	st = services[0].Stats()
	fmt.Printf("entry node totals: served=%d forwarded=%d scattered=%d errors=%d\n",
		st.Served, st.Forwarded, st.Scattered, st.Errors)
	fmt.Println("done: one address, the whole keyspace, across a crash")

	for i, s := range stores {
		if i == 2 {
			continue
		}
		services[i].Close()
		s.Close()
	}
}
