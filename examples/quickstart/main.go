// Quickstart: three processes form a group and exchange totally-ordered
// messages.
//
// This is the smallest end-to-end use of the library: a creator, two
// joiners, a few sends, and the observation that every member — sender
// included — receives the identical stream of data messages and membership
// events.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"amoeba"
)

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// One in-process "Ethernet"; in the paper each kernel is a machine on
	// the wire.
	network := amoeba.NewMemoryNetwork()
	defer network.Close()

	kernels := make([]*amoeba.Kernel, 3)
	for i := range kernels {
		k, err := network.NewKernel(fmt.Sprintf("machine-%d", i))
		if err != nil {
			log.Fatalf("kernel %d: %v", i, err)
		}
		kernels[i] = k
	}

	// Member 0 creates the group (becoming its sequencer); the others
	// join. Joins are totally ordered with everything else.
	groups := make([]*amoeba.Group, 3)
	var err error
	groups[0], err = kernels[0].CreateGroup(ctx, "quickstart", amoeba.GroupOptions{})
	if err != nil {
		log.Fatalf("CreateGroup: %v", err)
	}
	for i := 1; i < 3; i++ {
		groups[i], err = kernels[i].JoinGroup(ctx, "quickstart", amoeba.GroupOptions{})
		if err != nil {
			log.Fatalf("JoinGroup %d: %v", i, err)
		}
	}

	// Everyone sends concurrently…
	var wg sync.WaitGroup
	for i, g := range groups {
		i, g := i, g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 3; n++ {
				msg := fmt.Sprintf("hello %d from member %d", n, i)
				if err := g.Send(ctx, []byte(msg)); err != nil {
					log.Fatalf("send: %v", err)
				}
			}
		}()
	}
	wg.Wait()

	// …and every member receives the identical ordered stream.
	for i, g := range groups {
		fmt.Printf("--- member %d (id %d) sees ---\n", i, g.Info().Self)
		data := 0
		for data < 9 {
			m, err := g.Receive(ctx)
			if err != nil {
				log.Fatalf("receive: %v", err)
			}
			switch m.Kind {
			case amoeba.Data:
				fmt.Printf("  seq %2d  member %d: %s\n", m.Seq, m.Sender, m.Payload)
				data++
			case amoeba.Join:
				fmt.Printf("  seq %2d  member %d joined (%d members)\n", m.Seq, m.Sender, m.Members)
			}
		}
	}

	info := groups[0].Info()
	fmt.Printf("\ngroup %q: %d members, sequencer is member %d\n",
		info.Name, info.Members, info.Sequencer)
}
