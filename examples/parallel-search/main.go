// Parallel branch-and-bound: the paper's "parallel computations" use case
// (§5).
//
// Workers solve a traveling-salesman instance by branch and bound. Whenever
// a worker finds a better complete tour, it broadcasts the new bound to the
// group; everyone prunes against the best bound seen. Total ordering makes
// the bound stream identical at every worker, so no worker ever prunes
// against a stale-but-better bound another worker already retracted — the
// exact programming model ("processes running in lockstep") the paper's §2.2
// advertises. Parallel applications run with resilience 0 and are simply
// restarted on failure, as the paper reports its users did.
//
//	go run ./examples/parallel-search
package main

import (
	"context"
	"encoding/binary"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"amoeba"
)

const (
	cities  = 12
	workers = 4
)

// dist is the symmetric distance matrix of the TSP instance.
type matrix [cities][cities]int

func instance(seed int64) matrix {
	rng := rand.New(rand.NewSource(seed))
	var m matrix
	for i := 0; i < cities; i++ {
		for j := i + 1; j < cities; j++ {
			d := 10 + rng.Intn(90)
			m[i][j], m[j][i] = d, d
		}
	}
	return m
}

// worker explores all tours whose second city ≡ its index (a static split of
// the search tree), pruning against the shared bound.
type worker struct {
	id    int
	m     matrix
	group *amoeba.Group
	bound atomic.Int64 // best tour cost seen anywhere

	nodes    int64 // search nodes expanded
	improved int   // bounds this worker announced
}

// announce broadcasts a new bound.
func (w *worker) announce(ctx context.Context, cost int) error {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(cost))
	return w.group.Send(ctx, buf[:])
}

// listen applies the totally-ordered bound stream.
func (w *worker) listen(ctx context.Context) {
	for {
		m, err := w.group.Receive(ctx)
		if err != nil {
			return
		}
		if m.Kind != amoeba.Data || len(m.Payload) != 8 {
			continue
		}
		c := int64(binary.BigEndian.Uint64(m.Payload))
		// The stream is ordered, but apply monotonically anyway:
		// an older in-flight announcement must not loosen the bound.
		for {
			cur := w.bound.Load()
			if c >= cur || w.bound.CompareAndSwap(cur, c) {
				break
			}
		}
	}
}

// search runs depth-first branch and bound from a fixed first edge.
func (w *worker) search(ctx context.Context) {
	visited := [cities]bool{}
	tour := [cities]int{}
	visited[0] = true
	tour[0] = 0
	// Static split: worker w owns second cities w.id+1, w.id+1+workers, …
	for second := w.id + 1; second < cities; second += workers {
		visited[second] = true
		tour[1] = second
		w.dfs(ctx, tour[:], visited[:], 2, w.m[0][second])
		visited[second] = false
	}
}

func (w *worker) dfs(ctx context.Context, tour []int, visited []bool, depth, cost int) {
	w.nodes++
	bound := int(w.bound.Load())
	if cost >= bound {
		return // prune: no tour through this prefix can win
	}
	if depth == cities {
		total := cost + w.m[tour[cities-1]][0]
		if total < bound {
			w.improved++
			if err := w.announce(ctx, total); err != nil {
				log.Fatalf("worker %d announce: %v", w.id, err)
			}
		}
		return
	}
	last := tour[depth-1]
	for next := 1; next < cities; next++ {
		if visited[next] {
			continue
		}
		visited[next] = true
		tour[depth] = next
		w.dfs(ctx, tour, visited, depth+1, cost+w.m[last][next])
		visited[next] = false
	}
}

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	network := amoeba.NewMemoryNetwork()
	defer network.Close()

	m := instance(42)
	ws := make([]*worker, workers)
	for i := 0; i < workers; i++ {
		k, err := network.NewKernel(fmt.Sprintf("worker-%d", i))
		if err != nil {
			log.Fatalf("kernel: %v", err)
		}
		var g *amoeba.Group
		if i == 0 {
			g, err = k.CreateGroup(ctx, "tsp-bounds", amoeba.GroupOptions{})
		} else {
			g, err = k.JoinGroup(ctx, "tsp-bounds", amoeba.GroupOptions{})
		}
		if err != nil {
			log.Fatalf("worker %d: %v", i, err)
		}
		ws[i] = &worker{id: i, m: m, group: g}
		ws[i].bound.Store(1 << 30)
	}

	listenCtx, stopListen := context.WithCancel(ctx)
	for _, w := range ws {
		go w.listen(listenCtx)
	}

	start := time.Now()
	var wg sync.WaitGroup
	for _, w := range ws {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.search(ctx)
		}()
	}
	wg.Wait()
	// Let the final bound announcements drain to everyone.
	time.Sleep(100 * time.Millisecond)
	stopListen()

	var nodes int64
	for _, w := range ws {
		nodes += w.nodes
		fmt.Printf("worker %d: expanded %8d nodes, announced %d improved bounds\n",
			w.id, w.nodes, w.improved)
	}
	best := ws[0].bound.Load()
	for _, w := range ws {
		if w.bound.Load() != best {
			log.Fatalf("workers disagree on the optimum: %d vs %d", w.bound.Load(), best)
		}
	}
	fmt.Printf("optimal %d-city tour cost: %d (%d nodes in %v)\n",
		cities, best, nodes, time.Since(start).Round(time.Millisecond))
}
