// Fault tolerance walkthrough: resilience degrees, failure detection, and
// ResetGroup recovery (paper §2.1 and §3.1).
//
// Five members form a group with resilience 2: a send does not complete
// until two members besides the sequencer have stored the message, so the
// group tolerates any two simultaneous crashes without losing a completed
// send. The demo then crashes the sequencer AND one other member at once,
// rebuilds the group, and verifies that every message whose send completed
// before the crash is delivered by all survivors, in order, exactly once.
//
//	go run ./examples/fault-tolerance
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"amoeba"
)

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	network := amoeba.NewMemoryNetwork()
	defer network.Close()

	const members = 5
	const resilience = 2

	groups := make([]*amoeba.Group, members)
	for i := 0; i < members; i++ {
		k, err := network.NewKernel(fmt.Sprintf("node-%d", i))
		if err != nil {
			log.Fatalf("kernel: %v", err)
		}
		opts := amoeba.GroupOptions{Resilience: resilience}
		if i == 0 {
			groups[i], err = k.CreateGroup(ctx, "critical", opts)
		} else {
			groups[i], err = k.JoinGroup(ctx, "critical", opts)
		}
		if err != nil {
			log.Fatalf("member %d: %v", i, err)
		}
	}
	fmt.Printf("group formed: %d members, resilience %d\n", members, resilience)

	// Complete a batch of sends. With r=2, each Send returning means two
	// other kernels hold the message.
	var sent []string
	for i := 0; i < 10; i++ {
		msg := fmt.Sprintf("ledger-entry-%02d", i)
		if err := groups[1].Send(ctx, []byte(msg)); err != nil {
			log.Fatalf("send: %v", err)
		}
		sent = append(sent, msg)
	}
	fmt.Printf("completed %d resilient sends\n", len(sent))

	// Double failure: the sequencer and member 4 die at the same moment.
	fmt.Println("crashing the sequencer (member 0) and member 4…")
	groups[0].Close()
	groups[4].Close()

	// Any survivor may run recovery; member 2 notices and resets,
	// demanding the 3 expected survivors.
	if err := groups[2].Reset(ctx, 3); err != nil {
		log.Fatalf("reset: %v", err)
	}
	info := groups[2].Info()
	fmt.Printf("rebuilt: %d members, sequencer now member %d, incarnation %d\n",
		info.Members, info.Sequencer, info.Incarnation)

	// The rebuilt group still accepts resilient sends (degree capped by
	// the surviving membership).
	if err := groups[3].Send(ctx, []byte("post-recovery")); err != nil {
		log.Fatalf("post-recovery send: %v", err)
	}

	// Verify the guarantee: every completed pre-crash send is delivered
	// at every survivor, in order, exactly once.
	for _, i := range []int{1, 2, 3} {
		var got []string
		var resets, leaves int
		for len(got) < len(sent)+1 {
			m, err := groups[i].Receive(ctx)
			if err != nil {
				log.Fatalf("member %d receive: %v", i, err)
			}
			switch m.Kind {
			case amoeba.Data:
				got = append(got, string(m.Payload))
			case amoeba.Reset:
				resets++
			case amoeba.Leave:
				leaves++
			}
		}
		for j, want := range sent {
			if got[j] != want {
				log.Fatalf("member %d: position %d = %q, want %q", i, j, got[j], want)
			}
		}
		if got[len(sent)] != "post-recovery" {
			log.Fatalf("member %d: missing post-recovery message", i)
		}
		fmt.Printf("member %d: all %d pre-crash messages intact and ordered (saw %d reset event)\n",
			i, len(sent), resets)
	}
	fmt.Println("no completed send was lost — the resilience guarantee held")
}
