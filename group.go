package amoeba

import (
	"context"
	"sync"
	"time"

	"amoeba/internal/core"
	"amoeba/obs"
)

// MsgKind labels what a received Message represents.
type MsgKind int

// Message kinds. Data messages carry application payload; the rest are
// membership events, delivered in the same total order at every member.
const (
	Data MsgKind = iota + 1
	// Join reports a member (possibly this one) joining.
	Join
	// Leave reports a member leaving.
	Leave
	// Reset reports a completed recovery: the group was rebuilt after a
	// failure.
	Reset
	// Expelled reports that THIS member was removed from the group by a
	// recovery it did not participate in; the group handle is dead.
	Expelled
)

func (k MsgKind) String() string {
	switch k {
	case Data:
		return "data"
	case Join:
		return "join"
	case Leave:
		return "leave"
	case Reset:
		return "reset"
	case Expelled:
		return "expelled"
	default:
		return "unknown"
	}
}

func kindOf(k core.MsgKind) MsgKind {
	switch k {
	case core.KindData:
		return Data
	case core.KindJoin:
		return Join
	case core.KindLeave:
		return Leave
	case core.KindReset:
		return Reset
	case core.KindExpelled:
		return Expelled
	default:
		return 0
	}
}

// Message is one totally-ordered delivery from a group.
type Message struct {
	// Kind is Data for application messages, or a membership event.
	Kind MsgKind
	// Seq is the message's global sequence number; consecutive at every
	// member (recoveries in resilience-0 groups may skip lost numbers).
	Seq uint32
	// Sender is the member id of the sender (for membership events, the
	// member that joined or left).
	Sender int
	// Payload is the application data; nil for membership events. The
	// receiver owns it.
	Payload []byte
	// Members is the group size after this event.
	Members int
}

// GroupInfo is a GetInfoGroup snapshot.
type GroupInfo struct {
	// Name is the group's name.
	Name string
	// Self is this process's member id.
	Self int
	// Sequencer is the current sequencer's member id.
	Sequencer int
	// IsSequencer reports whether this process sequences the group.
	IsSequencer bool
	// Members is the current group size.
	Members int
	// MemberIDs lists member ids in ascending order.
	MemberIDs []int
	// Resilience is the group's fault-tolerance degree.
	Resilience int
	// Incarnation counts recoveries survived.
	Incarnation uint32
	// State names the membership's protocol state: "joining", "normal",
	// "recovering", "coordinating", or "dead".
	State string
	// NextSeq is the next sequence number this member expects to deliver.
	NextSeq uint32
}

// Group is one process's membership in a group. Methods are safe for
// concurrent use; Send and Receive block, per the paper's primitive design.
type Group struct {
	kernel   *Kernel
	name     string
	tr       *core.FLIPTransport
	ep       *core.Endpoint
	queue    *deliveryQueue
	obsUnreg func() // detaches the stats source from the hub registry
}

// Name returns the group's name.
func (g *Group) Name() string { return g.name }

// Send broadcasts payload to the group — the paper's SendToGroup. It blocks
// until the message is totally ordered (and, with resilience r, stored by r
// other members). Sends from one Group handle are delivered FIFO.
func (g *Group) Send(ctx context.Context, payload []byte) error {
	return waitCtx(ctx, func(done func(error)) { g.ep.Send(payload, done) })
}

// SendBatch broadcasts several payloads to the group as one pipelined burst:
// every payload is its own totally-ordered message (delivered individually,
// in submission order relative to this handle's other sends), but the
// protocol coalesces them into multi-payload ordering requests up to
// GroupOptions.MaxBatch, so the sequencer's per-request work is paid once
// per batch instead of once per message. SendBatch blocks until every
// payload is ordered (and, with resilience r, stored by r other members); it
// returns the first error encountered.
func (g *Group) SendBatch(ctx context.Context, payloads [][]byte) error {
	if len(payloads) == 0 {
		return nil
	}
	errs := make(chan error, len(payloads))
	dones := make([]func(error), len(payloads))
	for i := range dones {
		dones[i] = func(e error) { errs <- e }
	}
	// One submission under one lock: the burst coalesces into batch
	// requests before the send window starts transmitting — on the
	// sequencer's own node too, where ordering is deferred one drain cycle
	// for exactly this purpose.
	g.ep.SendMany(payloads, dones)
	var first error
	for range payloads {
		select {
		case err := <-errs:
			if err != nil && first == nil {
				first = err
			}
		case <-ctx.Done():
			// The protocol operations continue in the background;
			// only the wait is abandoned.
			return ctx.Err()
		}
	}
	return first
}

// GroupStats counts protocol events on this member's endpoint. The batch
// counters are sequencer-side: they are non-zero only while (and after) this
// member sequences the group.
type GroupStats struct {
	// Sent counts application sends completed by this member.
	Sent uint64
	// Delivered counts messages delivered to the application.
	Delivered uint64
	// Retries counts request retry rounds against an unresponsive
	// sequencer.
	Retries uint64
	// Ordered counts messages this member assigned sequence numbers to
	// (as sequencer).
	Ordered uint64
	// OrderedBatches counts multi-message batch requests ordered.
	OrderedBatches uint64
	// BatchedMsgs counts messages that travelled inside those batches.
	BatchedMsgs uint64
	// MaxBatchMsgs is the largest batch ordered.
	MaxBatchMsgs uint64
}

// Stats returns a snapshot of the member's protocol counters.
func (g *Group) Stats() GroupStats {
	s := g.ep.Stats()
	return GroupStats{
		Sent:           s.Sent,
		Delivered:      s.Delivered,
		Retries:        s.RequestRetries,
		Ordered:        s.Ordered,
		OrderedBatches: s.OrderedBatches,
		BatchedMsgs:    s.BatchedMsgs,
		MaxBatchMsgs:   s.MaxBatchMsgs,
	}
}

// Receive blocks until the next totally-ordered message — the paper's
// ReceiveFromGroup. Every member receives the same sequence of Messages,
// data and membership events interleaved identically.
func (g *Group) Receive(ctx context.Context) (Message, error) {
	return g.queue.pop(ctx)
}

// Leave departs the group in total order — the paper's LeaveGroup. It blocks
// until the departure is sequenced; afterwards the handle is dead.
func (g *Group) Leave(ctx context.Context) error {
	err := waitCtx(ctx, func(done func(error)) { g.ep.Leave(done) })
	if err == nil {
		g.tr.Unbind()
	}
	return err
}

// Reset rebuilds the group after a suspected failure — the paper's
// ResetGroup. It blocks until a new view with at least minAlive members is
// installed, retrying (and keeping the group blocked) while fewer survive.
// This process becomes the new sequencer.
func (g *Group) Reset(ctx context.Context, minAlive int) error {
	return waitCtx(ctx, func(done func(error)) { g.ep.Reset(minAlive, done) })
}

// Info returns a snapshot of the group's state — the paper's GetInfoGroup.
func (g *Group) Info() GroupInfo {
	info := g.ep.Info()
	ids := make([]int, 0, len(info.Members))
	for _, m := range info.Members {
		ids = append(ids, int(m.ID))
	}
	return GroupInfo{
		Name:        g.name,
		Self:        int(info.Self),
		Sequencer:   int(info.Sequencer),
		IsSequencer: info.IsSequencer,
		Members:     len(info.Members),
		MemberIDs:   ids,
		Resilience:  info.Resilience,
		Incarnation: info.Incarnation,
		State:       info.State,
		NextSeq:     info.NextSeq,
	}
}

// LeaseInfo is a snapshot of this member's read-lease state (see
// GroupOptions.LeaseDur).
type LeaseInfo struct {
	// Enabled reports whether the group runs with read leases.
	Enabled bool
	// Held reports whether a local linearizable read is permitted right
	// now. Validity is time-bounded: callers must re-check Held after
	// reading local state and discard the result if it lapsed.
	Held bool
	// Remaining is the time left on the held lease.
	Remaining time.Duration
	// Watermark is the sequence number local state must have applied
	// through before a lease read may serve: every write completed before
	// this snapshot has a seqno ≤ Watermark.
	Watermark uint32
	// Incarnation is the view incarnation the lease belongs to.
	Incarnation uint32
}

// Lease returns the member's read-lease snapshot. With leases enabled
// (GroupOptions.LeaseDur > 0), a member for which Held is true may serve a
// linearizable read from state that has applied deliveries through Watermark
// — provided Held is still true when the read finishes.
func (g *Group) Lease() LeaseInfo {
	li := g.ep.Lease()
	return LeaseInfo{
		Enabled:     li.Enabled,
		Held:        li.Held,
		Remaining:   li.Remaining,
		Watermark:   li.Watermark,
		Incarnation: li.Incarnation,
	}
}

// FreshAt bounds the staleness of local state that has applied deliveries
// through seq `applied`: every write completed more than the returned
// duration ago (plus one network transit) is reflected in that state.
// ok=false means no bound is known and a bounded-staleness read must fall
// back to a linearizable path.
func (g *Group) FreshAt(applied uint32) (time.Duration, bool) {
	return g.ep.FreshAt(applied)
}

// Close abandons the membership without protocol interaction — to the rest
// of the group, this member has crashed. Prefer Leave for orderly exits.
func (g *Group) Close() {
	g.ep.Close()
	g.tr.Unbind()
	g.queue.close()
	if g.obsUnreg != nil {
		g.obsUnreg()
	}
}

// deliveryQueue buffers ordered deliveries between the protocol goroutines
// and blocking Receive calls.
type deliveryQueue struct {
	mu     sync.Mutex
	msgs   []Message
	at     []time.Time // enqueue stamps, parallel to msgs; only kept when waitH != nil
	pushed uint64      // pushes since start, for the wait-sampling rule
	notify chan struct{}
	closed bool

	// Instruments (nil = no-op): waitH observes how long a message sat
	// queued before Receive picked it up (amoeba_group_deliver_wait_ns),
	// sampled 1-in-4 so the per-delivery wall-clock stamp stays off most
	// of the hot path; depth tracks the queue occupancy
	// (amoeba_group_queue_depth, delta-updated so groups can share it).
	waitH *obs.Histogram
	depth *obs.Gauge
}

func newDeliveryQueue(size int) *deliveryQueue {
	if size <= 0 {
		size = 1024
	}
	return &deliveryQueue{notify: make(chan struct{}, 1)}
}

func (q *deliveryQueue) push(d core.Delivery) {
	m := Message{
		Kind:    kindOf(d.Kind),
		Seq:     d.Seq,
		Sender:  int(d.Sender),
		Payload: d.Payload,
		Members: d.Members,
	}
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.msgs = append(q.msgs, m)
	if q.waitH != nil {
		var at time.Time // zero = unsampled; pop skips the observation
		if q.pushed&3 == 0 {
			at = time.Now()
		}
		q.pushed++
		q.at = append(q.at, at)
	}
	q.depth.Add(1)
	q.mu.Unlock()
	select {
	case q.notify <- struct{}{}:
	default:
	}
}

func (q *deliveryQueue) pop(ctx context.Context) (Message, error) {
	for {
		q.mu.Lock()
		if len(q.msgs) > 0 {
			m := q.msgs[0]
			q.msgs = q.msgs[1:]
			if q.waitH != nil && len(q.at) > 0 {
				if !q.at[0].IsZero() {
					q.waitH.Observe(time.Since(q.at[0]))
				}
				q.at = q.at[1:]
			}
			if !q.closed {
				q.depth.Add(-1)
			}
			more := len(q.msgs) > 0
			q.mu.Unlock()
			if more {
				select {
				case q.notify <- struct{}{}:
				default:
				}
			}
			return m, nil
		}
		closed := q.closed
		q.mu.Unlock()
		if closed {
			// Cascade the wakeup: close() sends a single token, so each
			// exiting popper re-arms it for the next blocked one.
			select {
			case q.notify <- struct{}{}:
			default:
			}
			return Message{}, ErrNotMember
		}
		select {
		case <-q.notify:
		case <-ctx.Done():
			return Message{}, ctx.Err()
		}
	}
}

func (q *deliveryQueue) close() {
	q.mu.Lock()
	if !q.closed {
		// Surrender the gauge's claim on still-buffered messages now;
		// post-close pops (which may never come) skip the decrement.
		q.depth.Add(-int64(len(q.msgs)))
	}
	q.closed = true
	q.mu.Unlock()
	select {
	case q.notify <- struct{}{}:
	default:
	}
}

// Debug renders the membership's internal protocol state for diagnostics.
// The format is unstable; log it, do not parse it.
func (g *Group) Debug() string { return g.ep.DebugSnapshot() }

// registerStatsSource exposes the endpoint's protocol counters through the
// hub's registry. Counters keep living in core's Stats struct — the registry
// pulls a snapshot at render time and sums same-named samples across groups.
// Close unregisters the source (its final values are retained as retired
// totals) so the registry does not pin a dead group's endpoint in memory.
func (g *Group) registerStatsSource(hub *obs.Hub) {
	ep := g.ep
	g.obsUnreg = hub.Registry().RegisterSource(func() []obs.Sample {
		s := ep.Stats()
		return []obs.Sample{
			{Name: "amoeba_core_sent_total", Value: s.Sent},
			{Name: "amoeba_core_delivered_total", Value: s.Delivered},
			{Name: "amoeba_core_ordered_total", Value: s.Ordered},
			{Name: "amoeba_core_ordered_batches_total", Value: s.OrderedBatches},
			{Name: "amoeba_core_batched_msgs_total", Value: s.BatchedMsgs},
			{Name: "amoeba_core_request_retries_total", Value: s.RequestRetries},
			{Name: "amoeba_core_retransmitted_total", Value: s.Retransmitted},
			{Name: "amoeba_core_naks_sent_total", Value: s.NaksSent},
			{Name: "amoeba_core_acks_sent_total", Value: s.AcksSent},
			{Name: "amoeba_core_lost_gaps_total", Value: s.LostGaps},
			{Name: "amoeba_core_resets_total", Value: s.Resets},
			{Name: "amoeba_core_dropped_full_total", Value: s.DroppedFull},
			{Name: "amoeba_core_lease_grants_total", Value: s.LeaseGrants},
			{Name: "amoeba_core_lease_renewals_total", Value: s.LeaseRenewals},
			{Name: "amoeba_core_lease_fences_total", Value: s.LeaseFences},
		}
	})
}
