// Package amoeba is a Go implementation of the Amoeba group communication
// system (Kaashoek & Tanenbaum, "An Evaluation of the Amoeba Group
// Communication System", ICDCS 1996): reliable, totally-ordered group
// multicast built on a per-group sequencer with negative acknowledgements
// and user-selectable fault tolerance.
//
// # Model
//
// A Kernel is the Amoeba kernel's communication stand-in: one per machine
// (or per process in a single-machine deployment), attached to a Network.
// Processes create or join named groups through their kernel and then
// exchange messages with the paper's Table 1 primitives:
//
//	Paper primitive    This API
//	CreateGroup        Kernel.CreateGroup
//	JoinGroup          Kernel.JoinGroup
//	LeaveGroup         Group.Leave
//	SendToGroup        Group.Send
//	ReceiveFromGroup   Group.Receive
//	ResetGroup         Group.Reset
//	GetInfoGroup       Group.Info
//	ForwardRequest     RPCServer handler returning a forward address —
//	                   see the kv package's shard proxy (kv.Service), which
//	                   answers misrouted requests by forwarding them to an
//	                   owning node, the reply returning from wherever the
//	                   request lands
//	(message history)  Amoeba's history is in-memory only: resilience r
//	                   survives r crashes, never a whole-cluster restart.
//	                   The wal package extends it to disk — shared.Open
//	                   journals each replica's delivered entries, and a
//	                   cold start reforms the group from the longest
//	                   surviving log, seeded via GroupOptions.FirstSeq
//	(groups under      The paper's applications added groups as load
//	 load)             grew, by hand. The kv package's routing-epoch
//	                   protocol makes that a first-class operation:
//	                   kv.Store.Resharding splits or merges a live
//	                   store's shard groups — an epoch-versioned routing
//	                   table replicated in every shard's state machine,
//	                   changed only by sequenced migrate-begin/chunk/
//	                   commit commands, so the handoff is exactly-once
//	                   and (with the wal) crash-resumable
//	(cross-group       The paper's groups are independent orders; Amoeba
//	 atomicity)        offered nothing atomic across them. The kv package
//	                   builds it from the primitives above: kv.Client.Txn
//	                   runs sequenced two-phase commit where prepare and
//	                   resolve records ride each participant shard's total
//	                   order (and WAL), the home shard's order arbitrates
//	                   the outcome, and recovery re-answers decisions from
//	                   the journaled portions — atomic multi-key commits
//	                   and consistent snapshots (kv.Client.MGet) across
//	                   shard groups, exactly-once under retry
//	(read leases)      The paper's reads either ride the total order (one
//	                   sequenced round per read) or accept unbounded
//	                   staleness. GroupOptions.LeaseDur adds a third
//	                   point: the sequencer piggybacks read leases on the
//	                   sync ticks it already sends, write acceptance waits
//	                   for every unexpired lease holder's stored-ack, and
//	                   a failed-over sequencer fences new writes for a
//	                   full lease term — so a lease-holding member reads
//	                   its own replica linearizably with no protocol round
//	                   at all (Group.Lease, shared.Replica.LeaseRead; the
//	                   kv package serves Get from it, and kv.Client.
//	                   StaleGet opts into bounded staleness via
//	                   Group.FreshAt when no lease is held)
//	(measurement)      The paper's evaluation decomposed protocol cost per
//	                   stage (request → sequencer → multicast → delivery)
//	                   with offline instrumentation. GroupOptions.Obs wires
//	                   the same decomposition in as a live facility: the
//	                   obs package's stage-latency histograms, cross-node
//	                   op traces keyed by command ids, and a flight
//	                   recorder of recent protocol events, exported as
//	                   Prometheus text by cmd/amoeba-kv's -metrics-addr
//	(state audit)      The total order gives every replica an identical
//	                   view of where it stands — so the kv package audits
//	                   with it: a periodic sequenced audit command
//	                   (kv.Options.AuditEvery) makes every replica digest
//	                   its state machine at the same seq; a per-node
//	                   auditor (obs.Auditor) compares digests across
//	                   replicas, localizes any mismatch to (shard, seq,
//	                   key-range), and rolls per-replica apply-lag and
//	                   staleness into the /health verdict cmd/amoeba-kv
//	                   serves; WAL checkpoints carry the same digest so
//	                   recovery refuses silently-rotted state
//
// All primitives are blocking, as in Amoeba; obtain concurrency by calling
// them from multiple goroutines (the paper's "parallelism through
// multithreading"). Every member of a group observes the same totally
// ordered stream of messages and membership events: if one process sends
// while another joins, either everyone sees the join first or everyone sees
// the message first.
//
// # Fault tolerance
//
// Groups are created with a resilience degree r (GroupOptions.Resilience).
// A Send does not return until the message is sequenced and — for r > 0 —
// stored by r other members, so any r simultaneous crashes lose no completed
// send. After a failure the group is rebuilt with Group.Reset (or
// automatically, with GroupOptions.AutoReset); survivors agree on the full
// message sequence. With r = 0, messages held only by a crashed sequencer
// may be lost, exactly as the paper specifies.
//
// # Quickstart
//
//	net := amoeba.NewMemoryNetwork()
//	defer net.Close()
//
//	k1, _ := net.NewKernel("machine-1")
//	k2, _ := net.NewKernel("machine-2")
//
//	g1, _ := k1.CreateGroup(ctx, "workers", amoeba.GroupOptions{})
//	g2, _ := k2.JoinGroup(ctx, "workers", amoeba.GroupOptions{})
//
//	go g1.Send(ctx, []byte("hello, group"))
//	msg, _ := g2.Receive(ctx)       // totally ordered at every member
package amoeba

import (
	"fmt"

	"amoeba/internal/netw/memnet"
	"amoeba/internal/netw/udpnet"
)

// MemoryNetworkConfig tunes the in-memory network's fault injection; the
// zero value is a reliable network.
type MemoryNetworkConfig struct {
	// DropRate is the probability in [0,1) that a frame is lost.
	DropRate float64
	// DupRate is the probability that a frame is duplicated.
	DupRate float64
	// ReorderRate is the probability that a frame is held back and
	// delivered after the next frame bound for the same station.
	ReorderRate float64
	// CorruptRate is the probability that a frame is corrupted in
	// transit (detected and discarded by the FLIP checksum).
	CorruptRate float64
	// Seed makes fault injection reproducible: every fault decision is
	// drawn from one source seeded here, so a fixed seed and a fixed
	// traffic sequence produce identical faults.
	Seed int64
}

// MemoryNetwork is an in-process network fabric: kernels attached to it
// exchange frames through channels, with per-receiver FIFO delivery and
// optional fault injection. It plays the role of the paper's 10 Mbit/s
// Ethernet for tests, examples, and native benchmarks. (The calibrated
// performance model of that Ethernet lives in the experiment harness; see
// cmd/amoeba-bench.)
type MemoryNetwork struct {
	net *memnet.Network
}

// NewMemoryNetwork returns a reliable in-memory network.
func NewMemoryNetwork() *MemoryNetwork {
	return NewMemoryNetworkWithFaults(MemoryNetworkConfig{})
}

// NewMemoryNetworkWithFaults returns an in-memory network with fault
// injection, for exercising the protocol's recovery paths.
func NewMemoryNetworkWithFaults(cfg MemoryNetworkConfig) *MemoryNetwork {
	return &MemoryNetwork{net: memnet.New(memnet.Config{
		DropRate:    cfg.DropRate,
		DupRate:     cfg.DupRate,
		ReorderRate: cfg.ReorderRate,
		CorruptRate: cfg.CorruptRate,
		Seed:        cfg.Seed,
	})}
}

// Close shuts down the network and every kernel attached to it.
func (n *MemoryNetwork) Close() { n.net.Close() }

// SetDropRate changes the frame-loss probability at runtime — a schedulable
// fault for adversarial tests (see the fuzz package).
func (n *MemoryNetwork) SetDropRate(p float64) { n.net.SetDropRate(p) }

// SetDuplicateRate changes the frame-duplication probability at runtime.
func (n *MemoryNetwork) SetDuplicateRate(p float64) { n.net.SetDuplicateRate(p) }

// SetReorderRate changes the frame-reordering probability at runtime.
func (n *MemoryNetwork) SetReorderRate(p float64) { n.net.SetReorderRate(p) }

// Partition cuts the link between two kernels: frames between them, either
// direction, are silently dropped until Heal. Both keep talking to everyone
// else — the split-brain pattern that drives conflicting failure suspicions.
func (n *MemoryNetwork) Partition(a, b *Kernel) {
	if a == nil || b == nil || a.station == nil || b.station == nil {
		return
	}
	n.net.Partition(a.station.ID(), b.station.ID())
}

// Heal removes every pairwise partition installed by Partition.
func (n *MemoryNetwork) Heal() { n.net.Heal() }

// Isolate cuts (or, with false, restores) every link of one kernel: a cable
// pull. The kernel keeps running — unlike Close, it can come back.
func (n *MemoryNetwork) Isolate(k *Kernel, partitioned bool) {
	if k == nil || k.station == nil {
		return
	}
	n.net.Isolate(k.station.ID(), partitioned)
}

// UDPNetwork is a network fabric over real UDP sockets on the loopback
// interface: kernels exchange genuine datagrams, with the loss, duplication,
// and reordering that real networks provide. Use it to exercise the full
// stack under an operating-system network; for cross-process or cross-host
// deployments, see internal/netw/udpnet's static-peer configuration.
type UDPNetwork struct {
	net *udpnet.Network
}

// NewUDPNetwork returns a UDP network on the loopback interface.
func NewUDPNetwork() *UDPNetwork {
	return &UDPNetwork{net: udpnet.New()}
}

// NewKernel attaches a kernel on its own UDP socket.
func (n *UDPNetwork) NewKernel(name string) (*Kernel, error) {
	station, err := n.net.Attach(name)
	if err != nil {
		return nil, fmt.Errorf("amoeba: attaching UDP kernel %q: %w", name, err)
	}
	return newKernel(name, station), nil
}

// Close shuts down every kernel's socket.
func (n *UDPNetwork) Close() { n.net.Close() }
