package amoeba

import (
	"context"
	"errors"
	"fmt"
	"time"

	"amoeba/internal/core"
	"amoeba/internal/flip"
	"amoeba/internal/netw"
	"amoeba/internal/sim"
	"amoeba/obs"
)

// Kernel is one machine's communication endpoint: a FLIP protocol stack over
// a network attachment, hosting group memberships and RPC endpoints — the
// role the Amoeba kernel plays in the paper's Table 2 layering.
type Kernel struct {
	name     string
	station  netw.Station // the link attachment, for network-level fault control
	stack    *flip.Stack
	clock    sim.Clock
	obsUnreg func() // detaches the FLIP stats source from the hub registry
}

// NewKernel attaches a kernel to the network. The name is used only in
// diagnostics.
func (n *MemoryNetwork) NewKernel(name string) (*Kernel, error) {
	station, err := n.net.Attach(name)
	if err != nil {
		return nil, fmt.Errorf("amoeba: attaching kernel %q: %w", name, err)
	}
	return newKernel(name, station), nil
}

// newKernel builds a kernel over any link attachment.
func newKernel(name string, station netw.Station) *Kernel {
	clock := sim.NewRealClock()
	return &Kernel{
		name:    name,
		station: station,
		stack: flip.NewStack(flip.Config{
			Station: station,
			Clock:   clock,
		}),
		clock: clock,
	}
}

// Close shuts the kernel down. Groups hosted on it stop communicating — the
// machine has, from the network's point of view, crashed.
func (k *Kernel) Close() {
	k.stack.Close()
	if k.obsUnreg != nil {
		k.obsUnreg()
	}
}

// RegisterObs exposes this kernel's FLIP stack counters through the hub's
// registry as amoeba_flip_*_total series. Counters keep living in the stack;
// the registry pulls a snapshot at render time, and several kernels sharing
// one hub sum. Safe with a nil hub (no-op); Close detaches the source.
func (k *Kernel) RegisterObs(hub *obs.Hub) {
	stack := k.stack
	k.obsUnreg = hub.Registry().RegisterSource(func() []obs.Sample {
		s := stack.Stats()
		return []obs.Sample{
			{Name: "amoeba_flip_packets_out_total", Value: s.PacketsOut},
			{Name: "amoeba_flip_packets_in_total", Value: s.PacketsIn},
			{Name: "amoeba_flip_garbled_total", Value: s.Garbled},
			{Name: "amoeba_flip_messages_delivered_total", Value: s.MessagesDelivered},
			{Name: "amoeba_flip_locates_sent_total", Value: s.LocatesSent},
			{Name: "amoeba_flip_locate_failures_total", Value: s.LocateFailures},
			{Name: "amoeba_flip_reassembly_drops_total", Value: s.ReassemblyDrops},
			{Name: "amoeba_flip_no_handler_total", Value: s.NoHandler},
		}
	})
}

// Method selects the group broadcast strategy; see the paper's §3.1.
type Method int

// Broadcast methods. MethodAuto (the default, and what Amoeba implements)
// switches per message: small payloads go point-to-point to the sequencer
// which multicasts them (PB — two transits of the data, one interrupt per
// receiver), large payloads are multicast by the sender and sequenced with a
// short accept (BB — one transit, two interrupts per receiver).
const (
	MethodAuto Method = iota
	MethodPB
	MethodBB
)

// GroupOptions configures a group membership. The zero value is a sensible
// default: resilience 0, automatic PB/BB switching, 128-message history.
type GroupOptions struct {
	// Resilience is the fault-tolerance degree r: Send returns only after
	// r other members have stored the message, and any r crashes lose no
	// completed send. 0 (the default) maximises performance; the paper's
	// replicated servers ran small groups with small r, its parallel
	// applications with r = 0.
	Resilience int
	// Method forces PB or BB; MethodAuto switches on message size.
	Method Method
	// BBThreshold is the size at which MethodAuto switches to BB
	// (default 1024 bytes).
	BBThreshold int
	// HistorySize is the bounded message history kept for retransmission
	// and recovery (default 128, as in the paper's experiments).
	HistorySize int
	// MaxMessage bounds a single message (default 64 KiB).
	MaxMessage int
	// SendWindow is the number of ordering requests this member keeps in
	// flight; sends beyond the window coalesce into batch requests,
	// multiplying per-group throughput for pipelined senders while
	// preserving per-sender FIFO. 1 restores one-request-at-a-time
	// (default 4).
	SendWindow int
	// MaxBatch bounds the messages coalesced into one batch request
	// (default 16; 1 disables coalescing).
	MaxBatch int
	// FirstSeq seeds a created group's sequence space: the first entry is
	// ordered at FirstSeq+1, as if FirstSeq messages had already been
	// delivered. A process reforming a group from a durable log (see the
	// shared package's Durability) sets it to the highest recovered
	// sequence number so the new history continues the recovered timeline.
	// Zero starts at 1 as always; JoinGroup ignores it.
	FirstSeq uint32
	// AutoReset makes the group rebuild itself when a member or the
	// sequencer is suspected dead. When false (default, matching
	// Amoeba), the application decides by calling Reset.
	AutoReset bool
	// MinSurvivors is the quorum automatic recovery requires
	// (default 1). 1 favours availability: any member that suspects the
	// sequencer can reform the group alone. Under a network partition
	// that also loses the sequencer this lets BOTH sides reform —
	// divergent total orders (split brain), demonstrated by the fuzz
	// harness's pinned regression schedule. Deployments that must stay
	// consistent across partitions should set a majority of the
	// replication factor; the fuzz harness defaults to that.
	MinSurvivors int
	// ReceiveBuffer bounds messages queued for Receive before Send-side
	// backpressure (default 1024).
	ReceiveBuffer int
	// LeaseDur, when > 0, enables sequencer-granted read leases: grants
	// ride the periodic sync ticks and a member holding an unexpired lease
	// serves linearizable reads from local state (Group.Lease). The price
	// is on the write path — every send takes the tentative/accept path
	// and acceptance waits for each live lease holder's stored-ack — and
	// on failover, which pauses the group for up to LeaseDur+LeaseGuard
	// while old grants expire. Keep it ≥ 8×SyncInterval for renewal
	// headroom. Zero (the default) disables leases.
	LeaseDur time.Duration
	// LeaseGuard is the lease safety margin absorbing grant transit and
	// timer skew. Default max(2.5×SyncInterval, LeaseDur/8), capped at
	// LeaseDur/2.
	LeaseGuard time.Duration
	// SyncInterval is the sequencer's watermark/lease-renewal tick period
	// (default 500ms; lease deployments typically lower it).
	SyncInterval time.Duration
	// Obs, when non-nil, wires the group's pipeline into the node's
	// observability hub: sequencer stage-latency histograms, delivery-queue
	// wait times, queue-depth gauges, and the flight recorder. Nil (the
	// default) is the no-op sink — instrumentation stays compiled in but
	// costs only nil checks. Several groups on one node normally share one
	// hub; gauges are delta-updated so the shared values stay coherent.
	Obs *obs.Hub
}

func (o GroupOptions) coreConfig() core.Config {
	return core.Config{
		Resilience:   o.Resilience,
		Method:       core.Method(o.Method),
		BBThreshold:  o.BBThreshold,
		HistorySize:  o.HistorySize,
		MaxMessage:   o.MaxMessage,
		SendWindow:   o.SendWindow,
		MaxBatch:     o.MaxBatch,
		FirstSeq:     o.FirstSeq,
		AutoReset:    o.AutoReset,
		MinSurvivors: o.MinSurvivors,
		LeaseDur:     o.LeaseDur,
		LeaseGuard:   o.LeaseGuard,
		SyncInterval: o.SyncInterval,
	}
}

// CreateGroup creates the named group with this kernel's process as its
// first member and sequencer. Creating a group that other processes have
// already created is not detected (atomic group creation is impossible with
// unreliable communication; the paper's §5 reports the same limitation) —
// coordinate creation or use JoinGroup with a retry-then-create pattern.
func (k *Kernel) CreateGroup(ctx context.Context, name string, opts GroupOptions) (*Group, error) {
	g, cfg := k.newGroup(name, opts)
	ep, err := core.NewCreator(cfg)
	if err != nil {
		return nil, fmt.Errorf("amoeba: creating group %q: %w", name, err)
	}
	g.ep = ep
	g.registerStatsSource(opts.Obs)
	g.tr.Bind(ep)
	ep.Start()
	return g, nil
}

// JoinGroup joins the named group, blocking until the join is totally
// ordered and acknowledged by the sequencer. It fails with ErrNoGroup if no
// sequencer answers.
func (k *Kernel) JoinGroup(ctx context.Context, name string, opts GroupOptions) (*Group, error) {
	g, cfg := k.newGroup(name, opts)
	done := make(chan error, 1)
	ep, err := core.NewJoiner(cfg, func(e error) { done <- e })
	if err != nil {
		return nil, fmt.Errorf("amoeba: joining group %q: %w", name, err)
	}
	g.ep = ep
	g.registerStatsSource(opts.Obs)
	g.tr.Bind(ep)
	ep.Start()
	select {
	case err := <-done:
		if err != nil {
			g.tr.Unbind()
			if errors.Is(err, core.ErrJoinFailed) {
				return nil, fmt.Errorf("amoeba: joining group %q: %w", name, ErrNoGroup)
			}
			return nil, fmt.Errorf("amoeba: joining group %q: %w", name, err)
		}
		return g, nil
	case <-ctx.Done():
		ep.Close()
		g.tr.Unbind()
		return nil, ctx.Err()
	}
}

func (k *Kernel) newGroup(name string, opts GroupOptions) (*Group, core.Config) {
	groupAddr := flip.AddressForName(name)
	self := k.stack.AllocAddress()
	g := &Group{
		kernel: k,
		name:   name,
		tr:     core.NewFLIPTransport(k.stack, self, groupAddr),
		queue:  newDeliveryQueue(opts.ReceiveBuffer),
	}
	cfg := opts.coreConfig()
	cfg.Group = groupAddr
	cfg.Self = self
	cfg.Transport = g.tr
	cfg.Clock = k.clock
	cfg.OnDeliver = g.queue.push
	if hub := opts.Obs; hub != nil {
		cfg.Obs = core.Obs{
			Append:      hub.Histogram("amoeba_seq_append_ns"),
			Multicast:   hub.Histogram("amoeba_seq_multicast_ns"),
			AckComplete: hub.Histogram("amoeba_seq_ack_complete_ns"),
			BatchFill:   hub.Histogram("amoeba_seq_batch_fill"),
			SendQueue:   hub.Gauge("amoeba_send_queue_depth"),
			SendWindow:  hub.Gauge("amoeba_send_window_active"),
			Flight:      hub.Flight(),
			Tag:         "core/" + name,
		}
		g.queue.waitH = hub.Histogram("amoeba_group_deliver_wait_ns")
		g.queue.depth = hub.Gauge("amoeba_group_queue_depth")
	}
	return g, cfg
}

// Sentinel errors returned by the public API.
var (
	// ErrNoGroup reports a join with no live sequencer for the name.
	ErrNoGroup = errors.New("amoeba: no such group")
	// ErrNotMember reports an operation on a group this process has left
	// or been expelled from.
	ErrNotMember = core.ErrNotMember
	// ErrSequencerDead reports exhausted retries against an unresponsive
	// sequencer; call Reset (or set GroupOptions.AutoReset).
	ErrSequencerDead = core.ErrSequencerDead
)

// waitCtx adapts a callback completion to ctx cancellation.
func waitCtx(ctx context.Context, start func(func(error))) error {
	done := make(chan error, 1)
	start(func(e error) { done <- e })
	select {
	case err := <-done:
		return err
	case <-ctx.Done():
		// The protocol operation continues in the background; only the
		// wait is abandoned.
		return ctx.Err()
	}
}
