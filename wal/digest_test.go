package wal

import (
	"hash/fnv"
	"os"
	"path/filepath"
	"testing"
)

// snapDigest is the test's stand-in for a state-machine digest: a hash of
// the snapshot bytes, so a verify hook can recompute it from whatever a
// checkpoint restored.
func snapDigest(snap []byte) uint64 {
	h := fnv.New64a()
	h.Write(snap)
	return h.Sum64()
}

// recoverVerified runs RecoverVerified with a verify hook that recomputes
// the digest of the restored snapshot — the same restore-then-verify dance a
// real state machine does.
func recoverVerified(t *testing.T, l *Log) (snapshot []byte, snapSeq uint32, entries []Entry, last uint32) {
	t.Helper()
	var cur []byte
	last, err := l.RecoverVerified(func(snap []byte, seq uint32) error {
		cur = append([]byte(nil), snap...)
		snapshot, snapSeq = cur, seq
		return nil
	}, func(e Entry) error {
		entries = append(entries, e)
		return nil
	}, func(seq uint32, digest uint64) bool {
		return snapDigest(cur) == digest
	})
	if err != nil {
		t.Fatalf("RecoverVerified: %v", err)
	}
	return snapshot, snapSeq, entries, last
}

// TestDigestMismatchFallsBackToPreviousCheckpoint is the tentpole recovery
// property: a checkpoint whose stamped digest does not match the state it
// restores is refused, and recovery falls back to the retained predecessor
// plus a longer replay — trading startup time for a verified state.
func TestDigestMismatchFallsBackToPreviousCheckpoint(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for seq := uint32(1); seq <= 5; seq++ {
		if err := l.Append([]Entry{entry(seq)}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	good := []byte("state@5")
	if err := l.CheckpointDigest(5, snapDigest(good), good); err != nil {
		t.Fatalf("CheckpointDigest: %v", err)
	}
	for seq := uint32(6); seq <= 10; seq++ {
		if err := l.Append([]Entry{entry(seq)}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	// The newest checkpoint's snapshot does not match its stamp — the
	// on-disk stand-in for silent state corruption at checkpoint time.
	bad := []byte("state@10")
	if err := l.CheckpointDigest(10, snapDigest(bad)^0xdead, bad); err != nil {
		t.Fatalf("CheckpointDigest: %v", err)
	}
	l.Close()

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	snap, snapSeq, entries, last := recoverVerified(t, l2)
	if string(snap) != "state@5" || snapSeq != 5 {
		t.Fatalf("recovered snapshot %q @%d, want the verified state@5 @5", snap, snapSeq)
	}
	if last != 10 || len(entries) != 5 || entries[0].Seq != 6 {
		t.Fatalf("replayed %d entries last=%d, want the longer 6..10 replay", len(entries), last)
	}
	if got := l2.Stats().CheckpointsRejected; got != 1 {
		t.Fatalf("CheckpointsRejected = %d, want 1", got)
	}
	if _, err := os.Stat(filepath.Join(dir, ckptName(10))); !os.IsNotExist(err) {
		t.Fatal("refused checkpoint file not removed")
	}
	// The surviving good checkpoint is still there for the next restart.
	if _, err := os.Stat(filepath.Join(dir, ckptName(5))); err != nil {
		t.Fatalf("fallback checkpoint missing: %v", err)
	}
	if err := l2.Append([]Entry{entry(11)}); err != nil {
		t.Fatalf("Append after fallback: %v", err)
	}
}

// TestAllCheckpointsRefusedReplaysFromScratch: when every retained
// checkpoint fails verification, recovery clears the state machine
// (restore(nil, 0)) and replays the journal from the beginning rather than
// trusting any restored state.
func TestAllCheckpointsRefusedReplaysFromScratch(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for seq := uint32(1); seq <= 8; seq++ {
		if err := l.Append([]Entry{entry(seq)}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	bad := []byte("state@8")
	if err := l.CheckpointDigest(8, snapDigest(bad)^1, bad); err != nil {
		t.Fatalf("CheckpointDigest: %v", err)
	}
	l.Close()

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	var restores int
	var lastRestore []byte
	var entries []Entry
	last, err := l2.RecoverVerified(func(snap []byte, seq uint32) error {
		restores++
		lastRestore = snap
		return nil
	}, func(e Entry) error {
		entries = append(entries, e)
		return nil
	}, func(seq uint32, digest uint64) bool {
		return false // refuse everything
	})
	if err != nil {
		t.Fatalf("RecoverVerified: %v", err)
	}
	// The refused restore must have been undone: the final restore call is
	// the nil reset, and replay covers the whole journal.
	if lastRestore != nil {
		t.Fatalf("final restore %q, want nil (state machine cleared)", lastRestore)
	}
	if restores < 2 {
		t.Fatalf("%d restore calls, want the refused one plus the clearing reset", restores)
	}
	if last != 8 || len(entries) != 8 || entries[0].Seq != 1 {
		t.Fatalf("replayed %d entries last=%d, want the full 1..8 journal", len(entries), last)
	}
	if got := l2.Stats().CheckpointsRejected; got == 0 {
		t.Fatal("no rejected checkpoints counted")
	}
	if err := l2.Append([]Entry{entry(9)}); err != nil {
		t.Fatalf("Append after scratch recovery: %v", err)
	}
}

// TestUnstampedCheckpointSkipsVerification: digest 0 marks a checkpoint
// written by a state machine with no digester — verification must not
// refuse it (there is nothing to check against).
func TestUnstampedCheckpointSkipsVerification(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := l.Append([]Entry{entry(1), entry(2)}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.Checkpoint(2, []byte("legacy@2")); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	l.Close()

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	var snap []byte
	var snapSeq uint32
	last, err := l2.RecoverVerified(func(s []byte, seq uint32) error {
		snap = append([]byte(nil), s...)
		snapSeq = seq
		return nil
	}, func(Entry) error { return nil }, func(seq uint32, digest uint64) bool {
		t.Fatal("verify called for an unstamped checkpoint")
		return false
	})
	if err != nil {
		t.Fatalf("RecoverVerified: %v", err)
	}
	if string(snap) != "legacy@2" || snapSeq != 2 || last != 2 {
		t.Fatalf("recovered %q @%d last=%d, want legacy@2 @2 2", snap, snapSeq, last)
	}
}

// TestTornCheckpointWithDigestFallsBack: a checkpoint file truncated inside
// the digest-stamped header (shorter than crc|seq|digest) is structurally
// invalid and recovery must fall back to the previous good one.
func TestTornCheckpointWithDigestFallsBack(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for seq := uint32(1); seq <= 4; seq++ {
		if err := l.Append([]Entry{entry(seq)}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	good := []byte("state@3")
	if err := l.CheckpointDigest(3, snapDigest(good), good); err != nil {
		t.Fatalf("CheckpointDigest: %v", err)
	}
	l.Close()

	// Forge a newer checkpoint torn mid-header (12 of 16 header bytes).
	if err := os.WriteFile(filepath.Join(dir, ckptName(4)), make([]byte, 12), 0o644); err != nil {
		t.Fatalf("forge torn checkpoint: %v", err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	snap, snapSeq, entries, last := recoverVerified(t, l2)
	if string(snap) != "state@3" || snapSeq != 3 {
		t.Fatalf("recovered %q @%d, want state@3 @3", snap, snapSeq)
	}
	if last != 4 || len(entries) != 1 || entries[0].Seq != 4 {
		t.Fatalf("replayed %v last=%d, want just seq 4", entries, last)
	}
	if _, err := os.Stat(filepath.Join(dir, ckptName(4))); !os.IsNotExist(err) {
		t.Fatal("torn checkpoint not removed")
	}
}
