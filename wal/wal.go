// Package wal is the durable-history layer of the group system: a segmented,
// checksummed write-ahead log of a replica's delivered ordered entries, plus
// snapshot checkpoints that bound replay.
//
// The paper's Amoeba keeps its ordered message history purely in memory —
// resilience degree r protects against r simultaneous crashes, but a
// whole-cluster power loss erases every group. This package closes that gap
// without touching the protocol: each replica journals the totally-ordered
// entries it applies (the same stream every member observes), periodically
// records a snapshot checkpoint of its state machine, and on a cold start
// rebuilds the state by restoring the newest checkpoint and replaying the
// log suffix beyond it.
//
// # On-disk layout
//
// A log is a directory:
//
//	seg-0000000000.wal    entry records with seqs > 0 (the segment's base)
//	seg-0000004096.wal    entry records with seqs > 4096
//	ckpt-0000004096.snap  snapshot reflecting every entry with seq ≤ 4096
//
// Entry records are batch-aware: one record covers a run of ordered entries
// (a coalesced delivery burst journals — and syncs — once), recording each
// entry's sequence number so replay can skip what a checkpoint already
// reflects. Every record carries a CRC32 over its body; replay stops at the
// first record that fails the checksum, so a torn tail — the write that was
// in flight when the machine died — truncates cleanly to the last complete
// entry instead of corrupting recovery. Checkpoints are written atomically
// (temp file, fsync, rename) and make every segment whose entries they cover
// dead; Checkpoint deletes dead segments, bounding the directory to roughly
// one checkpoint plus the entry suffix behind it.
//
// # Durability contract
//
// By default appends reach the operating system (surviving any process
// crash) but are not fsynced (a kernel panic or power loss may lose the
// tail). Options.Sync forces an fsync per append record, at the throughput
// cost amoeba-bench's "durable" experiment measures; checkpoints are always
// fsynced. Note what Sync does and does not promise: a replica journals at
// APPLY time, so an entry is on this disk once this replica has applied it —
// a command whose send completed but whose delivery no surviving replica had
// yet applied and journaled can still be lost to a simultaneous power cut.
// Losing such a tail is otherwise safe in a replicated group: recovery
// rejoins the group and state transfer supplies whatever the log lost — the
// log's job is to survive the restarts state transfer cannot help with,
// when every replica went down at once.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"amoeba/obs"
)

// Entry is one totally-ordered command: the payload applied to the state
// machine at sequence number Seq.
type Entry struct {
	Seq     uint32
	Payload []byte
}

// FaultOp names an injectable I/O site inside the log.
type FaultOp int

const (
	// FaultAppend is the entry-record write in Append.
	FaultAppend FaultOp = iota
	// FaultSync is an fsync of appended records (immediate or delayed).
	FaultSync
	// FaultCheckpoint is the checkpoint snapshot write.
	FaultCheckpoint
)

// InjectedFault is what a FaultHook asks the log to simulate at a fault
// point.
type InjectedFault int

const (
	// NoFault lets the operation run normally.
	NoFault InjectedFault = iota
	// DiskFull fails the operation cleanly with ErrDiskFull before any
	// byte reaches the file — ENOSPC. The log stays usable; a later
	// operation may succeed if the hook stops injecting.
	DiskFull
	// TornWrite lets only a prefix of the record reach the file before
	// failing — the half-written tail a power cut leaves behind. The log
	// poisons itself (see ErrPoisoned): nothing may be appended after a
	// partial record, because replay stops at the first invalid record and
	// would silently lose every entry behind it.
	TornWrite
)

// FaultHook decides, per operation, whether to inject a fault. It is called
// with the log's directory (so one process-wide hook can target a specific
// replica's log) and the operation about to run. Hooks run under the log
// mutex: keep them fast and do not call back into the log.
type FaultHook func(dir string, op FaultOp) InjectedFault

// Options tunes a log; the zero value is ready to use.
type Options struct {
	// SegmentSize is the size at which the active segment is sealed and a
	// new one started (default 1 MiB). Smaller segments truncate sooner
	// after a checkpoint; larger ones hold fewer open-file transitions.
	SegmentSize int
	// Sync forces an fsync after every append, extending durability from
	// process crashes to power loss. Checkpoints are fsynced regardless.
	Sync bool
	// SyncDelay, with Sync, coalesces fsyncs across append bursts: an
	// append marks the segment dirty and the fsync runs at most SyncDelay
	// later, covering every append since the previous one — group commit
	// across delivery bursts, so a slow disk pays one rotation for many
	// bursts instead of one each. The durability window widens from "the
	// append has returned" to "at most SyncDelay after the append
	// returned"; a replica already journals at apply time (after the ack),
	// so the protocol-level guarantee is unchanged in kind, only the
	// bound moves. Zero (the default) syncs inside every Append.
	SyncDelay time.Duration
	// Obs, when non-nil, records per-append and per-fsync latencies into
	// the hub's amoeba_wal_append_ns / amoeba_wal_fsync_ns histograms and
	// reports degradations to its flight recorder. Nil is the no-op sink.
	Obs *obs.Hub
	// FaultHook, when non-nil, is consulted before appends, fsyncs, and
	// checkpoints so tests and the fuzz harness can inject disk-full and
	// torn-tail failures mid-run instead of crafting fixtures offline.
	// Nil injects nothing.
	FaultHook FaultHook
}

func (o Options) withDefaults() Options {
	if o.SegmentSize <= 0 {
		o.SegmentSize = 1 << 20
	}
	return o
}

// Stats counts what the log has done since Open.
type Stats struct {
	// Appends counts Append calls (records written).
	Appends uint64
	// Syncs counts fsyncs issued for appended records (immediate under
	// Sync, or delayed-and-coalesced under SyncDelay: one sync may cover
	// many appends). Checkpoint and seal fsyncs are not counted.
	Syncs uint64
	// Entries counts entries journaled inside those records.
	Entries uint64
	// Checkpoints counts snapshot checkpoints written.
	Checkpoints uint64
	// SegmentsRemoved counts dead segments deleted by checkpoints.
	SegmentsRemoved uint64
	// TailTruncated reports that Open found a torn or corrupt tail record
	// and truncated the active segment back to the last complete entry.
	TailTruncated bool
	// ResetDiscarded counts entries beyond the reset point dropped by
	// Reset: history this log held that the authoritative state transfer
	// did not — a survivor that missed the cold-start election and joined
	// later gave up that suffix.
	ResetDiscarded uint64
	// CheckpointsRejected counts digest-stamped checkpoints refused at
	// recovery because the restored state's digest did not match the stamp
	// (see RecoverVerified) — recovery fell back to an older checkpoint and
	// a longer replay.
	CheckpointsRejected uint64
	// RecoveredEntries counts entries replayed by Recover (after the
	// checkpoint, if any).
	RecoveredEntries uint64
}

// Errors returned by the package.
var (
	// ErrClosed reports use of a closed log.
	ErrClosed = errors.New("wal: log closed")
	// ErrOutOfOrder reports an append whose sequence numbers do not
	// strictly ascend past everything already logged.
	ErrOutOfOrder = errors.New("wal: entries out of order")
	// ErrDiskFull reports an injected out-of-space failure.
	ErrDiskFull = errors.New("wal: disk full")
	// ErrPoisoned reports an append to a log whose active segment holds a
	// partial record: an earlier write failed midway, and anything
	// appended after it would be unreachable to replay (recovery stops at
	// the first invalid record). The caller must retire the log; the next
	// Open truncates the torn tail and starts clean.
	ErrPoisoned = errors.New("wal: log poisoned by a partial write")
)

// Record layout:
//
//	size  u32   length of body
//	crc   u32   CRC32 (IEEE) of body
//	body  size bytes:
//	      lo    u32     lowest seq in the record
//	      hi    u32     highest seq in the record
//	      count u16     entries that follow
//	      count × { seq u32 | len uvarint | payload }
//
// A record is valid iff its full body is present and the CRC matches; replay
// treats the first invalid record as the end of the log.
const (
	recordHeaderSize = 8
	recordBodyFixed  = 10
	// maxRecordBody bounds a single record, protecting replay from a
	// corrupt size field committing to a multi-gigabyte read.
	maxRecordBody = 16 << 20
)

const (
	segPrefix  = "seg-"
	segSuffix  = ".wal"
	ckptPrefix = "ckpt-"
	ckptSuffix = ".snap"
	tmpSuffix  = ".tmp"
)

func segName(base uint32) string { return fmt.Sprintf("%s%010d%s", segPrefix, base, segSuffix) }
func ckptName(seq uint32) string { return fmt.Sprintf("%s%010d%s", ckptPrefix, seq, ckptSuffix) }
func parseSeq(name, prefix, suffix string) (uint32, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	n, err := strconv.ParseUint(name[len(prefix):len(name)-len(suffix)], 10, 32)
	if err != nil {
		return 0, false
	}
	return uint32(n), true
}

// segment is one on-disk log file; entries in it have seqs > base.
type segment struct {
	base uint32
	path string
}

// Log is an open write-ahead log directory. Methods are safe for concurrent
// use: the log serialises itself on its own mutex, so a slow Checkpoint (a
// snapshot write and fsync) excludes concurrent Appends without the caller
// holding any wider lock across the disk I/O — the shared package's replica
// lock used to serialise the log, which made every read on a replica stall
// behind its periodic checkpoint.
type Log struct {
	dir  string
	opts Options

	// mu guards everything below (the delayed-sync state keeps its own
	// finer lock, shared with the timer goroutine).
	mu       sync.Mutex
	segments []segment // sorted by base; the last is active
	active   *os.File
	activeSz int64
	lastSeq  uint32 // highest seq logged or checkpointed
	ckptSeq  uint32 // newest valid checkpoint's seq (0: none)
	hasCkpt  bool   // a checkpoint file exists (even one at seq 0)
	closed   bool
	// writeErr poisons the log after a record write failed partway: the
	// active segment may hold a partial record, and appending past it
	// would strand every later entry beyond replay's reach (recovery
	// stops at the first invalid record). Sticky until Close; the next
	// Open truncates the tail and starts clean.
	writeErr error
	stats    Stats

	// Delayed-sync state. Unlike the rest of the log this is touched by
	// the timer goroutine too, so it has its own lock; syncs is read by
	// Stats while the timer may fire.
	syncMu    sync.Mutex
	syncTimer *time.Timer
	syncFile  *os.File // segment the pending delayed sync covers
	syncErr   error    // first delayed-fsync failure, surfaced by the next Append/Sync
	syncs     atomic.Uint64

	// Stage-latency instruments, resolved once at Open (nil without Obs).
	appendH  *obs.Histogram
	fsyncH   *obs.Histogram
	flight   *obs.Recorder
	obsUnreg func() // detaches the stats source from the hub registry
}

// Open opens (creating if needed) the log directory, validates the tail of
// the newest segment — truncating a torn final record back to the last
// complete entry — and positions the log to append after the highest
// recorded sequence number. Call Recover next to rebuild state.
func Open(dir string, opts Options) (*Log, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: creating %s: %w", dir, err)
	}
	l := &Log{dir: dir, opts: opts}
	l.appendH = opts.Obs.Histogram("amoeba_wal_append_ns")
	l.fsyncH = opts.Obs.Histogram("amoeba_wal_fsync_ns")
	l.flight = opts.Obs.Flight()
	l.obsUnreg = opts.Obs.Registry().RegisterSource(func() []obs.Sample {
		s := l.Stats()
		return []obs.Sample{
			{Name: "amoeba_wal_appends_total", Value: s.Appends},
			{Name: "amoeba_wal_syncs_total", Value: s.Syncs},
			{Name: "amoeba_wal_entries_total", Value: s.Entries},
			{Name: "amoeba_wal_checkpoints_total", Value: s.Checkpoints},
			{Name: "amoeba_wal_segments_removed_total", Value: s.SegmentsRemoved},
			{Name: "amoeba_wal_reset_discarded_total", Value: s.ResetDiscarded},
			{Name: "amoeba_wal_recovered_entries_total", Value: s.RecoveredEntries},
			{Name: "amoeba_wal_checkpoints_rejected_total", Value: s.CheckpointsRejected},
		}
	})
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: reading %s: %w", dir, err)
	}
	for _, de := range names {
		name := de.Name()
		if strings.HasSuffix(name, tmpSuffix) {
			_ = os.Remove(filepath.Join(dir, name)) // interrupted checkpoint
			continue
		}
		if base, ok := parseSeq(name, segPrefix, segSuffix); ok {
			l.segments = append(l.segments, segment{base: base, path: filepath.Join(dir, name)})
		}
	}
	sort.Slice(l.segments, func(i, j int) bool { return l.segments[i].base < l.segments[j].base })
	// Validate the newest checkpoint now rather than trusting filenames: a
	// corrupt checkpoint must not inflate lastSeq past what Recover can
	// actually restore, or the first post-recovery append would be
	// rejected as out of order.
	if _, seq, _, ok := l.readBestCheckpoint(); ok {
		l.ckptSeq, l.hasCkpt = seq, true
	}
	l.lastSeq = l.ckptSeq

	// Find the last segment holding a valid record: it defines lastSeq and
	// becomes the active segment after tail validation.
	for i := len(l.segments) - 1; i >= 0; i-- {
		validLen, maxSeq, torn, err := scanSegment(l.segments[i].path, nil, 0)
		if err != nil {
			return nil, err
		}
		if i == len(l.segments)-1 && torn {
			if err := os.Truncate(l.segments[i].path, validLen); err != nil {
				return nil, fmt.Errorf("wal: truncating torn tail of %s: %w", l.segments[i].path, err)
			}
			l.stats.TailTruncated = true
		}
		if maxSeq > 0 {
			if maxSeq > l.lastSeq {
				l.lastSeq = maxSeq
			}
			break
		}
	}
	if len(l.segments) == 0 {
		if err := l.rotate(); err != nil {
			return nil, err
		}
	} else {
		tail := l.segments[len(l.segments)-1]
		f, err := os.OpenFile(tail.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: opening active segment: %w", err)
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: sizing active segment: %w", err)
		}
		l.active, l.activeSz = f, st.Size()
	}
	return l, nil
}

// scanSegment walks a segment's records, calling visit (when non-nil) for
// every entry with seq > afterSeq, in order. It returns the byte length of
// the valid prefix, the highest seq seen, and whether the scan stopped at an
// invalid (torn or corrupt) record before the end of the file.
func scanSegment(path string, visit func(Entry) error, afterSeq uint32) (validLen int64, maxSeq uint32, torn bool, err error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, false, fmt.Errorf("wal: reading %s: %w", path, err)
	}
	off := int64(0)
	for int64(len(buf))-off >= recordHeaderSize {
		size := binary.BigEndian.Uint32(buf[off:])
		crc := binary.BigEndian.Uint32(buf[off+4:])
		if size < recordBodyFixed || size > maxRecordBody || int64(size) > int64(len(buf))-off-recordHeaderSize {
			return off, maxSeq, true, nil
		}
		body := buf[off+recordHeaderSize : off+recordHeaderSize+int64(size)]
		if crc32.ChecksumIEEE(body) != crc {
			return off, maxSeq, true, nil
		}
		hi := binary.BigEndian.Uint32(body[4:])
		count := int(binary.BigEndian.Uint16(body[8:]))
		rest := body[recordBodyFixed:]
		ok := true
		for i := 0; i < count; i++ {
			if len(rest) < 4 {
				ok = false
				break
			}
			seq := binary.BigEndian.Uint32(rest)
			rest = rest[4:]
			n, w := binary.Uvarint(rest)
			if w <= 0 || uint64(len(rest)-w) < n {
				ok = false
				break
			}
			payload := rest[w : w+int(n)]
			rest = rest[w+int(n):]
			if visit != nil && seq > afterSeq {
				if err := visit(Entry{Seq: seq, Payload: payload}); err != nil {
					return off, maxSeq, false, err
				}
			}
		}
		if !ok {
			// The CRC matched but the body does not parse: treat as the
			// end of the valid prefix, like a torn record.
			return off, maxSeq, true, nil
		}
		if hi > maxSeq {
			maxSeq = hi
		}
		off += recordHeaderSize + int64(size)
	}
	return off, maxSeq, int64(len(buf)) != off, nil
}

// armDelayedSync schedules (or coalesces into) the pending delayed fsync of
// the active segment: the first dirty append arms the timer, later appends
// inside the window ride the same fsync — group commit across bursts. A
// failure of an earlier delayed fsync is returned here (and from Sync), so
// a dying disk degrades the log exactly as the immediate-sync path would —
// one window late, never silently.
func (l *Log) armDelayedSync() error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	if l.syncErr != nil {
		return fmt.Errorf("wal: delayed fsync failed: %w", l.syncErr)
	}
	l.syncFile = l.active
	if l.syncTimer != nil {
		return nil // an fsync is already scheduled; this append joins it
	}
	l.syncTimer = time.AfterFunc(l.opts.SyncDelay, l.fireDelayedSync)
	return nil
}

// fireDelayedSync runs on the timer goroutine: flush whatever segment the
// window's appends landed in. *os.File is safe for concurrent Sync/Write; a
// segment sealed meanwhile was already fsynced by rotate.
func (l *Log) fireDelayedSync() {
	l.syncMu.Lock()
	f := l.syncFile
	l.syncTimer = nil
	l.syncFile = nil
	l.syncMu.Unlock()
	if f == nil {
		return
	}
	s0 := time.Now()
	if err := f.Sync(); err != nil {
		l.syncMu.Lock()
		if l.syncErr == nil {
			l.syncErr = err
		}
		l.syncMu.Unlock()
		l.flight.Recordf("wal", "delayed fsync failed in %s: %v", l.dir, err)
		return
	}
	l.fsyncH.Observe(time.Since(s0))
	l.syncs.Add(1)
}

// flushDelayedSync cancels the pending delayed fsync, if any; callers are
// about to fsync (or close) the segment themselves.
func (l *Log) flushDelayedSync() {
	l.syncMu.Lock()
	if l.syncTimer != nil {
		l.syncTimer.Stop()
		l.syncTimer = nil
		l.syncs.Add(1) // the caller's explicit fsync stands in for it
	}
	l.syncFile = nil
	l.syncMu.Unlock()
}

// rotate seals the active segment and starts a new one based at lastSeq.
func (l *Log) rotate() error {
	if l.active != nil {
		l.flushDelayedSync()
		if err := l.active.Sync(); err != nil {
			return fmt.Errorf("wal: syncing sealed segment: %w", err)
		}
		l.active.Close()
		l.active = nil
	}
	seg := segment{base: l.lastSeq, path: filepath.Join(l.dir, segName(l.lastSeq))}
	f, err := os.OpenFile(seg.path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating segment: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("wal: sizing segment: %w", err)
	}
	l.segments = append(l.segments, seg)
	l.active, l.activeSz = f, st.Size()
	return nil
}

// Append journals a run of entries as one record (one write, and — with
// Options.Sync — one fsync, however many entries the run carries: the
// batch-awareness that lets a coalesced delivery burst pay the disk once).
// Sequence numbers must strictly ascend past everything already logged.
func (l *Log) Append(entries []Entry) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.writeErr != nil {
		return l.writeErr
	}
	if len(entries) == 0 {
		return nil
	}
	start := time.Now()
	defer func() { l.appendH.Observe(time.Since(start)) }()
	last := l.lastSeq
	for _, e := range entries {
		if e.Seq <= last {
			return fmt.Errorf("%w: seq %d after %d", ErrOutOfOrder, e.Seq, last)
		}
		last = e.Seq
	}
	body := make([]byte, recordBodyFixed, recordBodyFixed+len(entries)*16)
	binary.BigEndian.PutUint32(body[0:], entries[0].Seq)
	binary.BigEndian.PutUint32(body[4:], entries[len(entries)-1].Seq)
	binary.BigEndian.PutUint16(body[8:], uint16(len(entries)))
	for _, e := range entries {
		body = binary.BigEndian.AppendUint32(body, e.Seq)
		body = binary.AppendUvarint(body, uint64(len(e.Payload)))
		body = append(body, e.Payload...)
	}
	rec := make([]byte, recordHeaderSize+len(body))
	binary.BigEndian.PutUint32(rec[0:], uint32(len(body)))
	binary.BigEndian.PutUint32(rec[4:], crc32.ChecksumIEEE(body))
	copy(rec[recordHeaderSize:], body)

	if hook := l.opts.FaultHook; hook != nil {
		switch hook(l.dir, FaultAppend) {
		case DiskFull:
			// ENOSPC before any byte landed: a clean failure the caller
			// may retry once space frees; the segment stays readable.
			return fmt.Errorf("wal: appending: %w", ErrDiskFull)
		case TornWrite:
			// Half the record reaches the disk — the tail a power cut
			// tears. The file now ends in garbage, so the log poisons
			// itself: see ErrPoisoned.
			n, _ := l.active.Write(rec[:recordHeaderSize+len(body)/2])
			l.activeSz += int64(n)
			l.writeErr = ErrPoisoned
			return fmt.Errorf("wal: appending: torn write: %w", ErrPoisoned)
		}
	}
	if n, err := l.active.Write(rec); err != nil {
		if n > 0 {
			// A partial record is on disk. Without poisoning, the next
			// successful append would sit behind an invalid record and
			// replay — which stops at the first bad record — would
			// silently lose it and everything after it.
			l.activeSz += int64(n)
			l.writeErr = ErrPoisoned
		}
		return fmt.Errorf("wal: appending: %w", err)
	}
	if l.opts.Sync {
		if l.opts.SyncDelay > 0 {
			if err := l.armDelayedSync(); err != nil {
				return err
			}
		} else {
			if hook := l.opts.FaultHook; hook != nil && hook(l.dir, FaultSync) != NoFault {
				return fmt.Errorf("wal: syncing append: %w", ErrDiskFull)
			}
			s0 := time.Now()
			if err := l.active.Sync(); err != nil {
				return fmt.Errorf("wal: syncing append: %w", err)
			}
			l.fsyncH.Observe(time.Since(s0))
			l.syncs.Add(1)
		}
	}
	l.activeSz += int64(len(rec))
	l.lastSeq = last
	l.stats.Appends++
	l.stats.Entries += uint64(len(entries))
	if l.activeSz >= int64(l.opts.SegmentSize) {
		return l.rotate()
	}
	return nil
}

// Recover rebuilds state from the log: restore is called once with the
// newest valid checkpoint (if any exists), then apply is called for every
// journaled entry beyond it, in ascending sequence order. Replay stops
// cleanly at the first record that fails its checksum — the torn tail of a
// crash — and at any callback error. It returns the highest sequence number
// the log knows (checkpoint or entry), the caller's recovery baseline.
func (l *Log) Recover(restore func(snapshot []byte, seq uint32) error, apply func(Entry) error) (uint32, error) {
	return l.RecoverVerified(restore, apply, nil)
}

// RecoverVerified is Recover with checkpoint-digest verification: after a
// digest-stamped checkpoint is restored, verify is called with the stamped
// state digest. Returning false refuses the checkpoint — the file is deleted
// and recovery falls back to the previous (older) checkpoint with a longer
// entry replay, or, when no checkpoint survives, to a from-scratch replay.
// Before a from-scratch replay forced by a refusal, restore is called one
// final time with a nil snapshot and seq 0: the state machine must reset to
// its zero state, discarding whatever the refused restore left behind.
// Checkpoints stamped with digest 0 (the unstamped sentinel written by
// Checkpoint) and a nil verify skip verification.
func (l *Log) RecoverVerified(restore func(snapshot []byte, seq uint32) error, apply func(Entry) error, verify func(seq uint32, digest uint64) bool) (uint32, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	afterSeq := uint32(0)
	rejected := false
	for {
		snap, seq, digest, ok := l.readBestCheckpoint()
		if !ok {
			// No checkpoint survives (unreadable, corrupt, or refused ones
			// were removed along the way).
			l.ckptSeq = 0
			l.hasCkpt = false
			if rejected && restore != nil {
				// A refused restore already mutated the state machine;
				// clear it before the from-scratch replay.
				if err := restore(nil, 0); err != nil {
					return 0, err
				}
			}
			break
		}
		if restore != nil {
			if err := restore(snap, seq); err != nil {
				return 0, err
			}
		}
		if digest != 0 && verify != nil && !verify(seq, digest) {
			rejected = true
			l.stats.CheckpointsRejected++
			l.flight.Recordf("wal", "checkpoint seq %d in %s refused: state digest mismatch, falling back", seq, l.dir)
			_ = os.Remove(filepath.Join(l.dir, ckptName(seq)))
			continue
		}
		afterSeq = seq
		break
	}
	recovered := afterSeq
	for _, seg := range l.segments {
		_, maxSeq, torn, err := scanSegment(seg.path, func(e Entry) error {
			if e.Seq <= recovered {
				return nil // idempotent replay: a record may straddle the checkpoint
			}
			// Detach the payload from the read buffer; appliers may retain it.
			p := make([]byte, len(e.Payload))
			copy(p, e.Payload)
			if apply != nil {
				if err := apply(Entry{Seq: e.Seq, Payload: p}); err != nil {
					return err
				}
			}
			recovered = e.Seq
			l.stats.RecoveredEntries++
			return nil
		}, recovered)
		if err != nil {
			return recovered, err
		}
		if maxSeq > recovered {
			recovered = maxSeq
		}
		if torn {
			// A damaged record ends the trustworthy history; anything
			// beyond it is unusable because order can no longer be
			// guaranteed. (Only the final segment can be torn by a crash;
			// mid-log damage means disk corruption, handled the same way.)
			break
		}
	}
	if recovered > l.lastSeq {
		l.lastSeq = recovered
	}
	if rejected && recovered < l.lastSeq {
		// The refused checkpoint had inflated lastSeq past what the
		// surviving history can actually reproduce; lower the append
		// baseline to the recovery point or post-recovery appends would be
		// refused as out of order.
		l.lastSeq = recovered
	}
	return recovered, nil
}

// ckptHeaderSize is the fixed prefix of a checkpoint file:
//
//	crc    u32   CRC32 (IEEE) of everything after it
//	seq    u32   every entry with seq ≤ this is reflected
//	digest u64   state digest at seq (0: unstamped)
//	snapshot     the state machine's serialized state
const ckptHeaderSize = 16

// ckptRetain is how many checkpoints the log keeps: the newest plus the one
// before it, so recovery that refuses the newest (digest mismatch) can fall
// back to the previous one with a longer replay instead of losing the
// covered prefix. Segments are only dead once the oldest retained checkpoint
// covers them.
const ckptRetain = 2

// listCheckpoints returns the checkpoint seqs present on disk, newest first.
func (l *Log) listCheckpoints() []uint32 {
	names, err := os.ReadDir(l.dir)
	if err != nil {
		return nil
	}
	var seqs []uint32
	for _, de := range names {
		if seq, ok := parseSeq(de.Name(), ckptPrefix, ckptSuffix); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] > seqs[j] })
	return seqs
}

// readBestCheckpoint returns the newest checkpoint whose CRC validates —
// with its stamped state digest — deleting ones that do not.
func (l *Log) readBestCheckpoint() ([]byte, uint32, uint64, bool) {
	for _, seq := range l.listCheckpoints() {
		path := filepath.Join(l.dir, ckptName(seq))
		buf, err := os.ReadFile(path)
		if err != nil || len(buf) < ckptHeaderSize {
			_ = os.Remove(path)
			continue
		}
		crc := binary.BigEndian.Uint32(buf)
		stored := binary.BigEndian.Uint32(buf[4:])
		if stored != seq || crc32.ChecksumIEEE(buf[4:]) != crc {
			_ = os.Remove(path)
			continue
		}
		digest := binary.BigEndian.Uint64(buf[8:])
		l.ckptSeq = seq
		return buf[ckptHeaderSize:], seq, digest, true
	}
	return nil, 0, 0, false
}

// Checkpoint records an unstamped snapshot reflecting every entry with
// seq ≤ seq — CheckpointDigest with digest 0, for state machines that cannot
// digest themselves.
func (l *Log) Checkpoint(seq uint32, snapshot []byte) error {
	return l.CheckpointDigest(seq, 0, snapshot)
}

// CheckpointDigest records a snapshot reflecting every entry with seq ≤ seq,
// stamped with the state machine's digest at that seq, written atomically
// and fsynced. It then prunes checkpoints beyond the retained pair and
// deletes the segments the oldest retained checkpoint makes dead. After a
// checkpoint, recovery restores the snapshot, verifies the digest (see
// RecoverVerified), and replays only the suffix beyond it.
func (l *Log) CheckpointDigest(seq uint32, digest uint64, snapshot []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.checkpointLocked(seq, digest, snapshot)
}

func (l *Log) checkpointLocked(seq uint32, digest uint64, snapshot []byte) error {
	if l.closed {
		return ErrClosed
	}
	if hook := l.opts.FaultHook; hook != nil && hook(l.dir, FaultCheckpoint) != NoFault {
		// Checkpoints are atomic (temp + rename), so any injected failure is
		// the clean kind: the previous checkpoint stays in force.
		return fmt.Errorf("wal: writing checkpoint: %w", ErrDiskFull)
	}
	buf := make([]byte, ckptHeaderSize+len(snapshot))
	binary.BigEndian.PutUint32(buf[4:], seq)
	binary.BigEndian.PutUint64(buf[8:], digest)
	copy(buf[ckptHeaderSize:], snapshot)
	binary.BigEndian.PutUint32(buf, crc32.ChecksumIEEE(buf[4:]))
	final := filepath.Join(l.dir, ckptName(seq))
	tmp := final + tmpSuffix
	if err := writeFileSync(tmp, buf); err != nil {
		return fmt.Errorf("wal: writing checkpoint: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("wal: installing checkpoint: %w", err)
	}
	syncDir(l.dir)
	l.ckptSeq = seq
	l.hasCkpt = true
	if seq > l.lastSeq {
		l.lastSeq = seq
	}
	l.stats.Checkpoints++
	// Prune to the retained pair: the new checkpoint plus its predecessor.
	for i, old := range l.listCheckpoints() {
		if i >= ckptRetain {
			_ = os.Remove(filepath.Join(l.dir, ckptName(old)))
		}
	}
	return l.dropDeadSegments()
}

// Reset replaces the log's history wholesale: a checkpoint at seq (stamped
// with digest, 0 for unstamped) plus the removal of every entry segment and
// prior checkpoint, dead or not. A replica that (re)joins a running group
// installs the transferred snapshot with Reset — the transfer is
// authoritative, and entries journaled on the replica's previous timeline
// (before it crashed or was expelled) must not resurface in a later replay.
func (l *Log) Reset(seq uint32, digest uint64, snapshot []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.active != nil {
		l.flushDelayedSync()
		l.active.Close()
		l.active = nil
	}
	if l.lastSeq > seq {
		l.stats.ResetDiscarded += uint64(l.lastSeq - seq)
		l.flight.Recordf("wal", "reset discarded %d entries beyond seq %d in %s", l.lastSeq-seq, seq, l.dir)
	}
	for _, seg := range l.segments {
		if err := os.Remove(seg.path); err != nil {
			return fmt.Errorf("wal: resetting: %w", err)
		}
		l.stats.SegmentsRemoved++
	}
	l.segments = nil
	l.lastSeq = seq
	// Checkpoints from the discarded timeline must not survive as fallback
	// candidates: the transfer is authoritative.
	for _, old := range l.listCheckpoints() {
		_ = os.Remove(filepath.Join(l.dir, ckptName(old)))
	}
	l.hasCkpt = false
	if err := l.checkpointLocked(seq, digest, snapshot); err != nil {
		return err
	}
	return l.rotate()
}

// dropDeadSegments deletes every sealed segment whose entries are all
// covered by the oldest retained checkpoint — not just the newest, so a
// recovery that refuses the newest checkpoint can still replay forward from
// its predecessor. Segment k's entries are bounded above by segment k+1's
// base, so the decision needs no scan.
func (l *Log) dropDeadSegments() error {
	cover := l.ckptSeq
	if seqs := l.listCheckpoints(); len(seqs) > 0 && seqs[len(seqs)-1] < cover {
		cover = seqs[len(seqs)-1]
	}
	keep := l.segments[:0]
	for i, seg := range l.segments {
		if i+1 < len(l.segments) && l.segments[i+1].base <= cover {
			if err := os.Remove(seg.path); err != nil {
				return fmt.Errorf("wal: removing dead segment: %w", err)
			}
			l.stats.SegmentsRemoved++
			continue
		}
		keep = append(keep, seg)
	}
	l.segments = keep
	return nil
}

// LastSeq reports the highest sequence number logged or checkpointed.
func (l *Log) LastSeq() uint32 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastSeq
}

// CheckpointSeq reports the newest checkpoint's sequence number (0: none).
func (l *Log) CheckpointSeq() uint32 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ckptSeq
}

// Virgin reports whether the log has never recorded anything: no entries and
// no checkpoint, even an empty one. A virgin log distinguishes a node's
// first-ever boot from a restart.
func (l *Log) Virgin() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return !l.hasCkpt && l.lastSeq == 0
}

// Stats returns a snapshot of the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	st := l.stats
	l.mu.Unlock()
	st.Syncs = l.syncs.Load()
	return st
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// Sync flushes the active segment to stable storage, absorbing any pending
// delayed fsync.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.active == nil {
		return nil
	}
	l.flushDelayedSync()
	l.syncMu.Lock()
	err := l.syncErr
	l.syncMu.Unlock()
	if err != nil {
		return fmt.Errorf("wal: delayed fsync failed: %w", err)
	}
	return l.active.Sync()
}

// Close flushes and closes the log. The directory remains ready for the next
// Open.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.obsUnreg != nil {
		unreg := l.obsUnreg
		l.obsUnreg = nil
		l.mu.Unlock()
		unreg() // reads Stats, which takes l.mu
		l.mu.Lock()
	}
	if l.active == nil {
		return nil
	}
	l.flushDelayedSync()
	err := l.active.Sync()
	if cerr := l.active.Close(); err == nil {
		err = cerr
	}
	l.active = nil
	return err
}

// writeFileSync writes data and fsyncs before closing.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so renames in it survive power loss; best
// effort (not every platform supports directory fsync).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}
