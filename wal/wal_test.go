package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func entry(seq uint32) Entry {
	return Entry{Seq: seq, Payload: []byte(fmt.Sprintf("payload-%d", seq))}
}

// replayAll recovers a log into memory.
func replayAll(t *testing.T, l *Log) (snapshot []byte, snapSeq uint32, entries []Entry, last uint32) {
	t.Helper()
	last, err := l.Recover(func(snap []byte, seq uint32) error {
		snapshot = append([]byte(nil), snap...)
		snapSeq = seq
		return nil
	}, func(e Entry) error {
		entries = append(entries, e)
		return nil
	})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	return snapshot, snapSeq, entries, last
}

func TestAppendReplayRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	// Batch-aware appends, with a seq gap (membership events are ordered
	// but not journaled).
	if err := l.Append([]Entry{entry(1), entry(2), entry(3)}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.Append([]Entry{entry(5)}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if got := l.LastSeq(); got != 5 {
		t.Fatalf("LastSeq = %d, want 5", got)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	snap, _, entries, last := replayAll(t, l2)
	if snap != nil {
		t.Fatalf("unexpected snapshot %q", snap)
	}
	if last != 5 || len(entries) != 4 {
		t.Fatalf("recovered last=%d entries=%d, want 5 and 4", last, len(entries))
	}
	for i, want := range []uint32{1, 2, 3, 5} {
		if entries[i].Seq != want || string(entries[i].Payload) != fmt.Sprintf("payload-%d", want) {
			t.Fatalf("entry %d = %d %q", i, entries[i].Seq, entries[i].Payload)
		}
	}
	// Appends continue past the recovered tail.
	if err := l2.Append([]Entry{entry(5)}); err == nil {
		t.Fatal("append at recovered seq should be out of order")
	}
	if err := l2.Append([]Entry{entry(6)}); err != nil {
		t.Fatalf("Append after recovery: %v", err)
	}
}

func TestOutOfOrderRejected(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	if err := l.Append([]Entry{entry(2), entry(1)}); err == nil {
		t.Fatal("descending batch accepted")
	}
	if err := l.Append([]Entry{entry(3)}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.Append([]Entry{entry(3)}); err == nil {
		t.Fatal("duplicate seq accepted")
	}
}

func TestCheckpointBoundsReplayAndTruncates(t *testing.T) {
	dir := t.TempDir()
	// Small segments so checkpoints have something to delete.
	l, err := Open(dir, Options{SegmentSize: 256})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for seq := uint32(1); seq <= 40; seq++ {
		if err := l.Append([]Entry{entry(seq)}); err != nil {
			t.Fatalf("Append %d: %v", seq, err)
		}
	}
	if err := l.Checkpoint(30, []byte("state@30")); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if l.Stats().SegmentsRemoved == 0 {
		t.Fatal("checkpoint deleted no dead segments")
	}
	for seq := uint32(41); seq <= 45; seq++ {
		if err := l.Append([]Entry{entry(seq)}); err != nil {
			t.Fatalf("Append %d: %v", seq, err)
		}
	}
	l.Close()

	l2, err := Open(dir, Options{SegmentSize: 256})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	snap, snapSeq, entries, last := replayAll(t, l2)
	if string(snap) != "state@30" || snapSeq != 30 {
		t.Fatalf("snapshot %q @%d, want state@30 @30", snap, snapSeq)
	}
	if last != 45 {
		t.Fatalf("recovered last=%d, want 45", last)
	}
	if len(entries) == 0 || entries[0].Seq != 31 || entries[len(entries)-1].Seq != 45 {
		t.Fatalf("replayed suffix %d..%d (%d entries), want 31..45",
			entries[0].Seq, entries[len(entries)-1].Seq, len(entries))
	}
	// The newest checkpoint plus its predecessor survive (ckptRetain), so
	// a digest-refused checkpoint has something to fall back to; a third
	// checkpoint evicts the oldest.
	if err := l2.Checkpoint(45, []byte("state@45")); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	countCkpts := func() int {
		names, _ := os.ReadDir(dir)
		n := 0
		for _, de := range names {
			if strings.HasPrefix(de.Name(), ckptPrefix) {
				n++
			}
		}
		return n
	}
	if got := countCkpts(); got != ckptRetain {
		t.Fatalf("%d checkpoint files, want %d (newest + fallback)", got, ckptRetain)
	}
	if err := l2.Append([]Entry{entry(46)}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l2.Checkpoint(46, []byte("state@46")); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if got := countCkpts(); got != ckptRetain {
		t.Fatalf("after third checkpoint: %d files, want %d", got, ckptRetain)
	}
}

// TestTornTailRecovery is the crash-mid-write case: a log segment truncated
// in the middle of a record must replay cleanly up to the last complete
// entry — the checksum guard — and the reopened log must accept appends.
func TestTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for seq := uint32(1); seq <= 10; seq++ {
		if err := l.Append([]Entry{entry(seq)}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	l.Close()

	// Tear the tail: chop the final record mid-body.
	seg := filepath.Join(dir, segName(0))
	buf, err := os.ReadFile(seg)
	if err != nil {
		t.Fatalf("read segment: %v", err)
	}
	if err := os.WriteFile(seg, buf[:len(buf)-7], 0o644); err != nil {
		t.Fatalf("tear segment: %v", err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen torn: %v", err)
	}
	if !l2.Stats().TailTruncated {
		t.Fatal("torn tail not detected")
	}
	_, _, entries, last := replayAll(t, l2)
	if last != 9 || len(entries) != 9 || entries[len(entries)-1].Seq != 9 {
		t.Fatalf("recovered last=%d entries=%d, want stop at 9", last, len(entries))
	}
	// The log is usable again: seq 10 was lost, so it is re-appendable.
	if err := l2.Append([]Entry{entry(10), entry(11)}); err != nil {
		t.Fatalf("Append after torn recovery: %v", err)
	}
	l2.Close()

	l3, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("third open: %v", err)
	}
	defer l3.Close()
	_, _, entries, last = replayAll(t, l3)
	if last != 11 || len(entries) != 11 {
		t.Fatalf("after re-append: last=%d entries=%d, want 11 and 11", last, len(entries))
	}
}

// TestCorruptRecordStopsReplay flips payload bytes inside a sealed record;
// the CRC must reject it and replay must stop there rather than deliver
// garbage.
func TestCorruptRecordStopsReplay(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for seq := uint32(1); seq <= 6; seq++ {
		if err := l.Append([]Entry{entry(seq)}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	l.Close()

	seg := filepath.Join(dir, segName(0))
	buf, _ := os.ReadFile(seg)
	// Records are identical length here; corrupt one near the middle.
	buf[len(buf)/2] ^= 0xFF
	if err := os.WriteFile(seg, buf, 0o644); err != nil {
		t.Fatalf("corrupt segment: %v", err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen corrupt: %v", err)
	}
	defer l2.Close()
	_, _, entries, _ := replayAll(t, l2)
	if len(entries) == 0 || len(entries) >= 6 {
		t.Fatalf("replayed %d entries, want a strict prefix stopped at the corruption", len(entries))
	}
	for i, e := range entries {
		if e.Seq != uint32(i+1) {
			t.Fatalf("entry %d has seq %d", i, e.Seq)
		}
	}
}

func TestCorruptCheckpointFallsBack(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := l.Append([]Entry{entry(1), entry(2)}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.Checkpoint(2, []byte("good@2")); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	l.Close()

	// Forge a newer, corrupt checkpoint: recovery must ignore it and use
	// the valid older one.
	bad := make([]byte, 8+4)
	binary.BigEndian.PutUint32(bad[4:], 9)
	if err := os.WriteFile(filepath.Join(dir, ckptName(9)), bad, 0o644); err != nil {
		t.Fatalf("forge checkpoint: %v", err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	snap, snapSeq, _, _ := replayAll(t, l2)
	if string(snap) != "good@2" || snapSeq != 2 {
		t.Fatalf("recovered snapshot %q @%d, want good@2 @2", snap, snapSeq)
	}
	if _, err := os.Stat(filepath.Join(dir, ckptName(9))); !os.IsNotExist(err) {
		t.Fatal("corrupt checkpoint not removed")
	}
	// The corrupt checkpoint's filename must not have inflated lastSeq:
	// the log continues right after what was actually recovered.
	if got := l2.LastSeq(); got != 2 {
		t.Fatalf("LastSeq = %d after discarding the forged checkpoint, want 2", got)
	}
	if err := l2.Append([]Entry{entry(3)}); err != nil {
		t.Fatalf("append after discarding forged checkpoint: %v", err)
	}
}

func TestResetDropsOldTimeline(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for seq := uint32(1); seq <= 20; seq++ {
		if err := l.Append([]Entry{entry(seq)}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	// A rejoin installs a transferred snapshot at seq 12: entries 13..20 are
	// from the dead timeline and must not survive.
	if err := l.Reset(12, 0, []byte("xfer@12")); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	if got := l.Stats().ResetDiscarded; got != 8 {
		t.Fatalf("ResetDiscarded = %d, want 8 (entries 13..20 given up)", got)
	}
	if err := l.Append([]Entry{entry(13)}); err != nil {
		t.Fatalf("Append after reset: %v", err)
	}
	l.Close()

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	snap, snapSeq, entries, last := replayAll(t, l2)
	if string(snap) != "xfer@12" || snapSeq != 12 {
		t.Fatalf("snapshot %q @%d, want xfer@12 @12", snap, snapSeq)
	}
	if len(entries) != 1 || entries[0].Seq != 13 || last != 13 {
		t.Fatalf("replayed %v last=%d, want only the new seq-13 entry", entries, last)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentSize: 128})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	for seq := uint32(1); seq <= 50; seq++ {
		if err := l.Append([]Entry{entry(seq)}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	names, _ := os.ReadDir(dir)
	segs := 0
	for _, de := range names {
		if strings.HasPrefix(de.Name(), segPrefix) {
			segs++
		}
	}
	if segs < 3 {
		t.Fatalf("%d segments after 50 appends at 128-byte segments, want several", segs)
	}
	_, _, entries, last := replayAll(t, l)
	if last != 50 || len(entries) != 50 {
		t.Fatalf("recovered last=%d entries=%d, want 50/50", last, len(entries))
	}
}

func TestEmptyAndFreshLogs(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	snap, _, entries, last := replayAll(t, l)
	if snap != nil || len(entries) != 0 || last != 0 {
		t.Fatalf("fresh log recovered snap=%v entries=%d last=%d", snap, len(entries), last)
	}
	if err := l.Append(nil); err != nil {
		t.Fatalf("empty append: %v", err)
	}
	l.Close()
	if err := l.Append([]Entry{entry(1)}); err != ErrClosed {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}
}

func TestSyncOption(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Sync: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	for seq := uint32(1); seq <= 5; seq++ {
		if err := l.Append([]Entry{entry(seq)}); err != nil {
			t.Fatalf("synced append: %v", err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
}

// TestSyncDelayCoalesces: under Sync with a SyncDelay, a burst of appends
// must share fsyncs (group commit across bursts) — strictly fewer syncs
// than appends — while recovery still sees every entry (equal durability
// for everything older than the delay window).
func TestSyncDelayCoalesces(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: true, SyncDelay: 50 * time.Millisecond})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	const n = 24
	for seq := uint32(1); seq <= n; seq++ {
		if err := l.Append([]Entry{entry(seq)}); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	// Let the delayed fsync fire, then settle the counters via Close (which
	// absorbs any still-pending sync).
	time.Sleep(120 * time.Millisecond)
	st := l.Stats()
	if st.Appends != n {
		t.Fatalf("appends=%d, want %d", st.Appends, n)
	}
	if st.Syncs == 0 || st.Syncs >= n {
		t.Fatalf("syncs=%d for %d appends: want coalescing (0 < syncs < appends)", st.Syncs, n)
	}
	l.Close()

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	_, _, entries, last := replayAll(t, l2)
	if last != n || len(entries) != n {
		t.Fatalf("recovered last=%d entries=%d, want %d/%d", last, len(entries), n, n)
	}
}

// TestSyncWithoutDelaySyncsEveryAppend pins the baseline the coalescing is
// measured against: no delay means one fsync per append record.
func TestSyncWithoutDelaySyncsEveryAppend(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Sync: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	const n = 8
	for seq := uint32(1); seq <= n; seq++ {
		if err := l.Append([]Entry{entry(seq)}); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if st := l.Stats(); st.Syncs != n {
		t.Fatalf("syncs=%d, want %d (one per append without SyncDelay)", st.Syncs, n)
	}
}

// scriptedHook injects a scripted fault for one FaultOp: the nth matching
// operation (0-based) fails, everything else runs clean.
type scriptedHook struct {
	op    FaultOp
	at    int
	fault InjectedFault
	seen  int
}

func (h *scriptedHook) hook(dir string, op FaultOp) InjectedFault {
	if op != h.op {
		return NoFault
	}
	h.seen++
	if h.seen-1 == h.at {
		return h.fault
	}
	return NoFault
}

func TestInjectedDiskFullIsCleanAndRetryable(t *testing.T) {
	dir := t.TempDir()
	h := &scriptedHook{op: FaultAppend, at: 1, fault: DiskFull}
	l, err := Open(dir, Options{FaultHook: h.hook})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := l.Append([]Entry{entry(1)}); err != nil {
		t.Fatalf("Append 1: %v", err)
	}
	if err := l.Append([]Entry{entry(2)}); !errors.Is(err, ErrDiskFull) {
		t.Fatalf("Append 2 = %v, want ErrDiskFull", err)
	}
	// Disk-full is clean: no byte hit the file, so the retry succeeds and
	// the log carries on.
	if err := l.Append([]Entry{entry(2)}); err != nil {
		t.Fatalf("retry after disk full: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	_, _, entries, last := replayAll(t, l2)
	if last != 2 || len(entries) != 2 {
		t.Fatalf("recovered last=%d entries=%d, want 2 and 2", last, len(entries))
	}
}

func TestInjectedTornWritePoisonsUntilReopen(t *testing.T) {
	dir := t.TempDir()
	h := &scriptedHook{op: FaultAppend, at: 1, fault: TornWrite}
	l, err := Open(dir, Options{FaultHook: h.hook})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := l.Append([]Entry{entry(1)}); err != nil {
		t.Fatalf("Append 1: %v", err)
	}
	if err := l.Append([]Entry{entry(2)}); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("torn Append = %v, want ErrPoisoned", err)
	}
	// The partial record is on disk; every later append must refuse, or
	// replay (which stops at the first invalid record) would silently lose
	// it.
	if err := l.Append([]Entry{entry(3)}); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("Append after torn write = %v, want ErrPoisoned", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Reopen truncates the torn tail and the log starts clean.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if st := l2.Stats(); !st.TailTruncated {
		t.Fatal("reopen should report TailTruncated")
	}
	_, _, entries, last := replayAll(t, l2)
	if last != 1 || len(entries) != 1 {
		t.Fatalf("recovered last=%d entries=%d, want 1 and 1", last, len(entries))
	}
	if err := l2.Append([]Entry{entry(2)}); err != nil {
		t.Fatalf("Append after reopen: %v", err)
	}
}

func TestInjectedCheckpointFailureKeepsPreviousCheckpoint(t *testing.T) {
	dir := t.TempDir()
	h := &scriptedHook{op: FaultCheckpoint, at: 1, fault: DiskFull}
	l, err := Open(dir, Options{FaultHook: h.hook})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := l.Append([]Entry{entry(1), entry(2)}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.Checkpoint(2, []byte("snap-2")); err != nil {
		t.Fatalf("Checkpoint 2: %v", err)
	}
	if err := l.Append([]Entry{entry(3)}); err != nil {
		t.Fatalf("Append 3: %v", err)
	}
	if err := l.Checkpoint(3, []byte("snap-3")); !errors.Is(err, ErrDiskFull) {
		t.Fatalf("Checkpoint 3 = %v, want ErrDiskFull", err)
	}
	if got := l.CheckpointSeq(); got != 2 {
		t.Fatalf("CheckpointSeq = %d, want 2 (previous stays in force)", got)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	snap, snapSeq, entries, last := replayAll(t, l2)
	if string(snap) != "snap-2" || snapSeq != 2 {
		t.Fatalf("recovered snapshot %q at %d, want snap-2 at 2", snap, snapSeq)
	}
	if last != 3 || len(entries) != 1 || entries[0].Seq != 3 {
		t.Fatalf("recovered last=%d entries=%v, want 3 and [3]", last, entries)
	}
}

func TestInjectedSyncFailureSurfacesFromAppend(t *testing.T) {
	dir := t.TempDir()
	h := &scriptedHook{op: FaultSync, at: 0, fault: DiskFull}
	l, err := Open(dir, Options{Sync: true, FaultHook: h.hook})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	if err := l.Append([]Entry{entry(1)}); !errors.Is(err, ErrDiskFull) {
		t.Fatalf("Append = %v, want ErrDiskFull from failed sync", err)
	}
	// The record itself landed; the next append (whose sync succeeds)
	// continues the sequence.
	if err := l.Append([]Entry{entry(2)}); err != nil {
		t.Fatalf("Append 2: %v", err)
	}
}
