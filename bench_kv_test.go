package amoeba_test

// Multi-shard key-value benchmarks. These live in the external test package:
// kv imports amoeba, so the in-package bench file cannot import kv without a
// cycle.
//
// BenchmarkKVShardScaling_Sim is the headline scaling result for the kv
// subsystem: aggregate ordering throughput on the paper's modelled hardware
// (one machine per group member) as the shard count grows. With one shard,
// every write funnels through a single sequencer machine (the paper's
// Figure 4 ceiling); with S shards the sequencers run on S machines and
// aggregate msg/s multiplies — Figure 6's parallel-groups effect applied to
// a storage workload. Like the other *_Sim benches, the reported sim-msg/s
// is virtual-time throughput; ns/op measures the simulator itself.
//
// The Native benches measure this library's real single-host performance
// (latency of the write, sequenced-read, local-read, and scatter-gather
// paths). They cannot demonstrate shard scaling: in-process, all "machines"
// time-share the host's CPUs, so spreading sequencers buys no aggregate
// cycles — that is what the simulator's per-machine CPU model is for.

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"amoeba"
	"amoeba/internal/experiments"
	"amoeba/internal/netsim"
	"amoeba/kv"
)

// BenchmarkKVShardScaling_Sim reports aggregate virtual-time throughput of
// 1, 2, 4, and 8 shard groups (3-way replicated) on the paper's hardware.
// The aggregate rises near-linearly until the shared 10 Mbit/s Ethernet
// saturates (≈4 shards on the paper's wire).
func BenchmarkKVShardScaling_Sim(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		shards := shards
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				agg, err := experiments.ParallelGroupsPoint(netsim.DefaultCostModel(), shards, 3)
				if err != nil {
					b.Fatalf("ParallelGroupsPoint: %v", err)
				}
				total += agg
			}
			b.ReportMetric(total/float64(b.N), "sim-msg/s")
		})
	}
}

// benchCluster bootstraps a kv store over nodes fresh kernels.
func benchCluster(b *testing.B, shards, nodes int) []*kv.Store {
	b.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	b.Cleanup(cancel)
	net := amoeba.NewMemoryNetwork()
	b.Cleanup(net.Close)
	kernels := make([]*amoeba.Kernel, nodes)
	for i := range kernels {
		k, err := net.NewKernel(fmt.Sprintf("bench-node-%d", i))
		if err != nil {
			b.Fatalf("kernel: %v", err)
		}
		kernels[i] = k
	}
	stores, err := kv.Bootstrap(ctx, kernels, fmt.Sprintf("bench-%d", shards), kv.Options{Shards: shards})
	if err != nil {
		b.Fatalf("Bootstrap: %v", err)
	}
	b.Cleanup(func() {
		for _, s := range stores {
			s.Close()
		}
	})
	return stores
}

// BenchmarkKVNativePut measures real concurrent write throughput on the
// in-memory transport across shard counts (4 nodes, 8 writers). See the
// package comment for why this measures protocol overhead, not scaling.
func BenchmarkKVNativePut(b *testing.B) {
	const nodes = 4
	for _, shards := range []int{1, 4} {
		shards := shards
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			stores := benchCluster(b, shards, nodes)
			ctx := context.Background()
			const workers = 8
			value := make([]byte, 64)
			var next atomic.Int64
			b.ResetTimer()
			start := time.Now()
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				cl := stores[w%nodes].NewClient()
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						n := next.Add(1)
						if n > int64(b.N) {
							return
						}
						key := fmt.Sprintf("key-%06d", n%1024)
						if err := cl.Put(ctx, key, value); err != nil {
							b.Errorf("Put: %v", err)
							return
						}
					}
				}()
			}
			wg.Wait()
			elapsed := time.Since(start)
			b.StopTimer()
			if elapsed > 0 {
				b.ReportMetric(float64(b.N)/elapsed.Seconds(), "ops/s")
			}
		})
	}
}

// BenchmarkKVSequencedGet measures the linearizable read path (a read marker
// through the shard's total order).
func BenchmarkKVSequencedGet(b *testing.B) {
	stores := benchCluster(b, 4, 2)
	ctx := context.Background()
	cl := stores[0].NewClient()
	if err := cl.Put(ctx, "bench-key", []byte("v")); err != nil {
		b.Fatalf("Put: %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := cl.Get(ctx, "bench-key"); err != nil {
			b.Fatalf("Get: %v", err)
		}
	}
}

// BenchmarkKVLocalGet measures the fast local-read path for comparison: no
// network traffic at all.
func BenchmarkKVLocalGet(b *testing.B) {
	stores := benchCluster(b, 4, 2)
	ctx := context.Background()
	cl := stores[0].NewClient()
	if err := cl.Put(ctx, "bench-key", []byte("v")); err != nil {
		b.Fatalf("Put: %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := cl.LocalGet("bench-key"); !ok {
			b.Fatal("LocalGet missed")
		}
	}
}

// BenchmarkKVMGet measures a scatter-gather read of 16 keys across 4 shards.
func BenchmarkKVMGet(b *testing.B) {
	stores := benchCluster(b, 4, 2)
	ctx := context.Background()
	cl := stores[0].NewClient()
	keys := make([]string, 16)
	for i := range keys {
		keys[i] = fmt.Sprintf("mget-%d", i)
		if err := cl.Put(ctx, keys[i], []byte("v")); err != nil {
			b.Fatalf("Put: %v", err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.MGet(ctx, keys...); err != nil {
			b.Fatalf("MGet: %v", err)
		}
	}
}
