module amoeba

go 1.21
